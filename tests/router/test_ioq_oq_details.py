"""Architecture-specific details of the OQ and IOQ routers."""

import pytest

from repro import Settings, Simulation
from repro.router.congestion import SOURCE_OUTPUT
from tests.conftest import run_config


def clos_oq_config(sensor_latency=1, depth=64):
    return {
        "simulator": {"seed": 13},
        "network": {
            "topology": "folded_clos",
            "half_radix": 2, "num_levels": 2,
            "num_vcs": 1,
            "channel_latency": 2,
            "router": {"architecture": "output_queued",
                       "input_queue_depth": 16,
                       "core_latency": 3,
                       "output_queue_depth": depth,
                       "congestion_sensor": {"latency": sensor_latency,
                                             "source": "output",
                                             "granularity": "port"}},
            "interface": {"max_packet_size": 1},
            "routing": {"algorithm": "clos_adaptive"},
        },
        "workload": {"applications": [{
            "type": "blast",
            "injection_rate": 0.3,
            "warmup_duration": 200,
            "generate_duration": 1000,
            "traffic": {"type": "uniform_to_root"},
            "message_size": {"type": "constant", "size": 1},
        }]},
    }


class TestOutputQueued:
    def test_sensor_tracks_committed_occupancy(self):
        """During the run the sensor's output-source occupancy stays
        within [0, capacity] and ends at zero."""
        simulation, results = run_config(clos_oq_config())
        assert results.drained
        for router in simulation.network.routers:
            for port in range(router.num_ports):
                if not router.port_is_wired(port):
                    continue
                occupancy = router.sensor.raw_occupancy(SOURCE_OUTPUT, port, 0)
                assert occupancy == 0, "queues must be empty after drain"

    def test_committed_counters_zero_after_drain(self):
        simulation, results = run_config(clos_oq_config())
        for router in simulation.network.routers:
            for port in range(router.num_ports):
                for vc in range(router.num_vcs):
                    assert router.output_queue_occupancy(port, vc) == 0

    def test_invalid_output_queue_depth(self):
        config = clos_oq_config(depth=0)
        with pytest.raises(Exception):
            Simulation(Settings.from_dict(config))

    def test_multiple_inputs_enqueue_same_output_in_one_cycle(self):
        """The idealized OQ property: with all-to-one single-flit
        traffic, an output queue can gain more than one flit per cycle
        (no scheduling conflicts, §IV-C)."""
        config = {
            "simulator": {"seed": 3},
            "network": {
                "topology": "parking_lot",
                "length": 3, "concentration": 2,
                "num_vcs": 1,
                "channel_latency": 1,
                "router": {"architecture": "output_queued",
                           "input_queue_depth": 8,
                           "core_latency": 1,
                           "output_queue_depth": None},
                "interface": {"max_packet_size": 1},
                "routing": {"algorithm": "chain"},
            },
            "workload": {"applications": [{
                "type": "blast",
                "injection_rate": 1.0,
                "warmup_duration": 100,
                "generate_duration": 500,
                "traffic": {"type": "all_to_one"},
                "message_size": {"type": "constant", "size": 1},
            }]},
        }
        simulation, results = run_config(config, max_time=30_000)
        # Offered 6 flits/cycle into one terminal (capacity 1): with
        # infinite OQ queues everything is absorbed and later drained.
        assert results.drained
        assert results.delivered_fraction() == 1.0


class TestInputOutputQueued:
    def _config(self, channel_period=2):
        return {
            "simulator": {"seed": 13},
            "network": {
                "topology": "hyperx",
                "dimension_widths": [4], "concentration": 2,
                "num_vcs": 2,
                "channel_latency": 4,
                "channel_period": channel_period,
                "router": {"architecture": "input_output_queued",
                           "input_queue_depth": 16,
                           "core_latency": 2,
                           "output_queue_depth": 16},
                "interface": {"max_packet_size": 4},
                "routing": {"algorithm": "hyperx_dimension_order"},
            },
            "workload": {"applications": [{
                "type": "blast",
                "injection_rate": 0.4,
                "warmup_duration": 400,
                "generate_duration": 2000,
                "traffic": {"type": "uniform_random"},
                "message_size": {"type": "constant", "size": 4},
            }]},
        }

    def test_speedup_delivers_at_rate(self):
        _sim, results = run_config(self._config(channel_period=2))
        assert results.drained
        assert results.accepted_load() == pytest.approx(0.4, abs=0.05)

    def test_internal_credits_restored_after_drain(self):
        simulation, results = run_config(self._config())
        assert results.drained
        for router in simulation.network.routers:
            for port in range(router.num_ports):
                tracker = router._oq_credits[port]
                for vc in range(tracker.num_vcs):
                    assert tracker.available(vc) == tracker.capacity(vc)

    def test_queued_counts_zero_after_drain(self):
        simulation, results = run_config(self._config())
        for router in simulation.network.routers:
            assert all(count == 0 for count in router._queued_count)
            assert router._in_flight == 0

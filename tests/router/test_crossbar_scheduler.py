"""Crossbar scheduler: the three flow control techniques (§VI-C)."""

import pytest

from repro.config.settings import Settings
from repro.net.message import Message
from repro.router.crossbar_scheduler import (
    FLIT_BUFFER,
    PACKET_BUFFER,
    WINNER_TAKE_ALL,
    Bid,
    CrossbarScheduler,
)


class CreditPool:
    """Mutable credit table the scheduler queries."""

    def __init__(self, default=8):
        self.table = {}
        self.default = default

    def set(self, out_port, out_vc, credits):
        self.table[(out_port, out_vc)] = credits

    def __call__(self, out_port, out_vc):
        return self.table.get((out_port, out_vc), self.default)


def make_scheduler(mode, credits=None, num_ports=4, num_vcs=2):
    settings = Settings.from_dict({"flow_control": mode})
    pool = credits if credits is not None else CreditPool()
    return CrossbarScheduler(num_ports, num_vcs, settings, pool), pool


def make_packet(num_flits):
    return Message(0, 0, 1, num_flits).packetize(num_flits)[0]


def bid_for(packet, flit_index, in_port=0, in_vc=0, out_port=0, out_vc=0):
    return Bid(in_port, in_vc, packet, packet.flits[flit_index], out_port, out_vc)


class TestFlitBuffer:
    def test_interleaves_two_packets(self):
        """FB: contending packets alternate, each taking 50% (paper)."""
        scheduler, _pool = make_scheduler(FLIT_BUFFER)
        a = make_packet(4)
        b = make_packet(4)
        winners = []
        ai = bi = 0
        for _cycle in range(8):
            bids = []
            if ai < 4:
                bids.append(bid_for(a, ai, in_port=0))
            if bi < 4:
                bids.append(bid_for(b, bi, in_port=1))
            grants = scheduler.schedule(bids, _cycle)
            assert len(grants) == 1
            grant = grants[0]
            winners.append(grant.in_port)
            if grant.in_port == 0:
                ai += 1
            else:
                bi += 1
        assert winners == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_requires_one_credit(self):
        scheduler, pool = make_scheduler(FLIT_BUFFER)
        pool.set(0, 0, 0)
        packet = make_packet(2)
        assert scheduler.schedule([bid_for(packet, 0)], 0) == []
        pool.set(0, 0, 1)
        assert len(scheduler.schedule([bid_for(packet, 0)], 1)) == 1

    def test_never_locks(self):
        scheduler, _pool = make_scheduler(FLIT_BUFFER)
        packet = make_packet(3)
        scheduler.schedule([bid_for(packet, 0)], 0)
        assert scheduler.locked_owner(0) is None


class TestPacketBuffer:
    def test_needs_credits_for_whole_packet(self):
        scheduler, pool = make_scheduler(PACKET_BUFFER)
        pool.set(0, 0, 3)
        packet = make_packet(4)
        assert scheduler.schedule([bid_for(packet, 0)], 0) == []
        pool.set(0, 0, 4)
        assert len(scheduler.schedule([bid_for(packet, 0)], 1)) == 1

    def test_locks_until_tail(self):
        scheduler, _pool = make_scheduler(PACKET_BUFFER)
        a = make_packet(3)
        b = make_packet(3)
        # a wins the initial arbitration; b keeps bidding.
        grants = scheduler.schedule(
            [bid_for(a, 0, in_port=0), bid_for(b, 0, in_port=1)], 0
        )
        assert grants[0].in_port == 0
        for i in (1, 2):
            grants = scheduler.schedule(
                [bid_for(a, i, in_port=0), bid_for(b, 0, in_port=1)], i
            )
            assert [g.in_port for g in grants] == [0]
        # Tail granted: lock released, b finally wins.
        grants = scheduler.schedule([bid_for(b, 0, in_port=1)], 3)
        assert grants[0].in_port == 1

    def test_output_idles_on_upstream_gap(self):
        """PB keeps the lock even when the owner has no flit this cycle."""
        scheduler, _pool = make_scheduler(PACKET_BUFFER)
        a = make_packet(3)
        b = make_packet(1)
        scheduler.schedule([bid_for(a, 0, in_port=0)], 0)
        # Owner (a) missing; challenger (b) present: nothing is granted.
        assert scheduler.schedule([bid_for(b, 0, in_port=1)], 1) == []
        assert scheduler.locked_owner(0) == (0, 0)

    def test_no_credit_stall_once_streaming(self):
        """The reservation guarantees credits; a stall is a hard error."""
        scheduler, pool = make_scheduler(PACKET_BUFFER)
        packet = make_packet(2)
        scheduler.schedule([bid_for(packet, 0)], 0)
        pool.set(0, 0, 0)  # violate the invariant from outside
        with pytest.raises(RuntimeError):
            scheduler.schedule([bid_for(packet, 1)], 1)


class TestWinnerTakeAll:
    def test_starts_without_full_packet_credits(self):
        scheduler, pool = make_scheduler(WINNER_TAKE_ALL)
        pool.set(0, 0, 1)  # only 1 credit for a 4-flit packet
        packet = make_packet(4)
        assert len(scheduler.schedule([bid_for(packet, 0)], 0)) == 1

    def test_lock_holds_while_streaming(self):
        scheduler, _pool = make_scheduler(WINNER_TAKE_ALL)
        a = make_packet(3)
        b = make_packet(3)
        scheduler.schedule([bid_for(a, 0, in_port=0), bid_for(b, 0, in_port=1)], 0)
        grants = scheduler.schedule(
            [bid_for(a, 1, in_port=0), bid_for(b, 0, in_port=1)], 1
        )
        assert [g.in_port for g in grants] == [0]

    def test_credit_stall_unlocks_and_hands_over(self):
        """WTA: a stalled streamer loses the output to a ready packet."""
        scheduler, pool = make_scheduler(WINNER_TAKE_ALL)
        a = make_packet(4)
        b = make_packet(2)
        pool.set(0, 0, 8)
        pool.set(0, 1, 8)
        scheduler.schedule([bid_for(a, 0, in_port=0, out_vc=0)], 0)
        pool.set(0, 0, 0)  # a's VC runs out of credits
        grants = scheduler.schedule(
            [bid_for(a, 1, in_port=0, out_vc=0),
             bid_for(b, 0, in_port=1, out_vc=1)], 1
        )
        assert [g.in_port for g in grants] == [1]
        assert scheduler.locked_owner(0) == (1, 0)

    def test_upstream_gap_unlocks(self):
        scheduler, _pool = make_scheduler(WINNER_TAKE_ALL)
        a = make_packet(3)
        b = make_packet(1)
        scheduler.schedule([bid_for(a, 0, in_port=0)], 0)
        # Owner absent this cycle: B takes over immediately.
        grants = scheduler.schedule([bid_for(b, 0, in_port=1)], 1)
        assert [g.in_port for g in grants] == [1]


class TestGeneralBehaviour:
    def test_one_grant_per_output(self):
        scheduler, _pool = make_scheduler(FLIT_BUFFER)
        bids = [
            bid_for(make_packet(1), 0, in_port=i, out_port=i % 2)
            for i in range(4)
        ]
        grants = scheduler.schedule(bids, 0)
        assert len(grants) == 2
        assert {g.out_port for g in grants} == {0, 1}

    def test_full_input_speedup(self):
        """Two VCs of the same input port can win different outputs."""
        scheduler, _pool = make_scheduler(FLIT_BUFFER)
        bids = [
            bid_for(make_packet(1), 0, in_port=0, in_vc=0, out_port=0),
            bid_for(make_packet(1), 0, in_port=0, in_vc=1, out_port=1),
        ]
        grants = scheduler.schedule(bids, 0)
        assert len(grants) == 2

    def test_single_flit_packets_behave_identically_across_modes(self):
        """The paper's observation: with 1-flit messages the three
        techniques all act the same."""
        histories = {}
        for mode in (FLIT_BUFFER, PACKET_BUFFER, WINNER_TAKE_ALL):
            scheduler, _pool = make_scheduler(mode)
            history = []
            packets = {0: make_packet(1), 1: make_packet(1), 2: make_packet(1)}
            pending = dict(packets)
            for cycle in range(6):
                bids = [
                    bid_for(p, 0, in_port=port)
                    for port, p in pending.items()
                ]
                grants = scheduler.schedule(bids, cycle)
                for g in grants:
                    history.append(g.in_port)
                    del pending[g.in_port]
                if not pending:
                    break
            histories[mode] = history
        assert histories[FLIT_BUFFER] == histories[PACKET_BUFFER]
        assert histories[FLIT_BUFFER] == histories[WINNER_TAKE_ALL]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("bogus")

    def test_empty_schedule(self):
        scheduler, _pool = make_scheduler(FLIT_BUFFER)
        assert scheduler.schedule([], 0) == []

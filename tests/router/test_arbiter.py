"""Arbiters: round robin fairness, age-based priority, validity."""

import numpy as np
import pytest

from repro.config.settings import Settings
from repro.net.message import Message
from repro.router.arbiter import (
    AgeBasedArbiter,
    Arbiter,
    FixedPriorityArbiter,
    RandomArbiter,
    RoundRobinArbiter,
    create_arbiter,
)


def packet_with_age(injection_tick):
    packet = Message(0, 0, 1, 1).packetize(1)[0]
    packet.injection_tick = injection_tick
    return packet


class TestRoundRobin:
    def test_empty_requests(self):
        assert RoundRobinArbiter(4).arbitrate([]) is None

    def test_single_request(self):
        assert RoundRobinArbiter(4).arbitrate([(2, None)]) == 2

    def test_rotation_over_persistent_requesters(self):
        arbiter = RoundRobinArbiter(3)
        requests = [(0, None), (1, None), (2, None)]
        winners = [arbiter.arbitrate(list(requests)) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_fairness_under_contention(self):
        arbiter = RoundRobinArbiter(4)
        counts = {i: 0 for i in range(4)}
        for _ in range(400):
            winner = arbiter.arbitrate([(i, None) for i in range(4)])
            counts[winner] += 1
        assert all(count == 100 for count in counts.values())

    def test_skips_non_requesters(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.arbitrate([(1, None), (3, None)]) == 1
        assert arbiter.arbitrate([(1, None), (3, None)]) == 3
        assert arbiter.arbitrate([(1, None), (3, None)]) == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).arbitrate([(5, None)])


class TestAgeBased:
    def test_oldest_wins(self):
        arbiter = AgeBasedArbiter(4)
        old = packet_with_age(10)
        young = packet_with_age(90)
        winner = arbiter.arbitrate([(0, young), (1, old)], now_tick=100)
        assert winner == 1

    def test_tie_breaks_by_index(self):
        arbiter = AgeBasedArbiter(4)
        a = packet_with_age(50)
        b = packet_with_age(50)
        assert arbiter.arbitrate([(3, a), (1, b)], now_tick=100) == 1

    def test_missing_packet_is_age_zero(self):
        arbiter = AgeBasedArbiter(4)
        old = packet_with_age(0)
        assert arbiter.arbitrate([(0, None), (1, old)], now_tick=50) == 1

    def test_empty(self):
        assert AgeBasedArbiter(2).arbitrate([]) is None


class TestRandom:
    def test_winner_is_a_requester(self):
        arbiter = RandomArbiter(8, np.random.default_rng(0))
        for _ in range(50):
            winner = arbiter.arbitrate([(2, None), (5, None), (7, None)])
            assert winner in (2, 5, 7)

    def test_covers_all_requesters(self):
        arbiter = RandomArbiter(4, np.random.default_rng(1))
        winners = {
            arbiter.arbitrate([(i, None) for i in range(4)]) for _ in range(200)
        }
        assert winners == {0, 1, 2, 3}


class TestFixedPriority:
    def test_lowest_index_wins(self):
        arbiter = FixedPriorityArbiter(4)
        assert arbiter.arbitrate([(3, None), (1, None), (2, None)]) == 1
        # And it keeps winning: intentionally unfair.
        assert arbiter.arbitrate([(3, None), (1, None)]) == 1


class TestFactory:
    def test_create_by_settings(self):
        arbiter = create_arbiter(Settings.from_dict({"type": "age_based"}), 4)
        assert isinstance(arbiter, AgeBasedArbiter)

    def test_default_is_round_robin(self):
        arbiter = create_arbiter(Settings.from_dict({}), 4)
        assert isinstance(arbiter, RoundRobinArbiter)

    def test_random_gets_rng(self):
        rng = np.random.default_rng(7)
        arbiter = create_arbiter(Settings.from_dict({"type": "random"}), 4, rng)
        assert isinstance(arbiter, RandomArbiter)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

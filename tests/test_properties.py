"""Property-based tests (hypothesis) on core data structures and
invariants."""

import heapq

from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.config.settings import Settings, apply_override, parse_override
from repro.core.clock import Clock
from repro.core.simtime import TimeStep
from repro.core.simulator import Simulator
from repro.net.credit import CreditTracker
from repro.router.arbiter import RoundRobinArbiter
from repro.stats.latency import LatencyDistribution
from repro.topology.util import coords_to_index, index_to_coords, ring_distance

ticks = st.integers(min_value=0, max_value=10**9)
epsilons = st.integers(min_value=0, max_value=1000)


class TestTimeStepProperties:
    @given(ticks, epsilons, ticks, epsilons)
    def test_ordering_is_lexicographic(self, t1, e1, t2, e2):
        a, b = TimeStep(t1, e1), TimeStep(t2, e2)
        assert (a < b) == ((t1, e1) < (t2, e2))
        assert (a == b) == ((t1, e1) == (t2, e2))

    @given(ticks, epsilons, st.integers(min_value=0, max_value=1000))
    def test_plus_ticks_monotone(self, tick, epsilon, delta):
        base = TimeStep(tick, epsilon)
        later = base.plus_ticks(delta)
        assert later >= TimeStep(tick, 0)
        assert later.epsilon == 0

    @given(st.lists(st.tuples(ticks, epsilons), min_size=1, max_size=50))
    def test_heap_order_matches_sort_order(self, times):
        steps = [TimeStep(t, e) for t, e in times]
        heap = list(steps)
        heapq.heapify(heap)
        popped = [heapq.heappop(heap) for _ in range(len(heap))]
        assert popped == sorted(steps)


class TestClockProperties:
    @given(st.integers(min_value=1, max_value=97),
           st.integers(min_value=0, max_value=10_000))
    def test_next_edge_is_an_edge_at_or_after(self, period, tick):
        clock = Clock(Simulator(), period=period)
        edge = clock.next_edge(tick)
        assert edge >= tick
        assert clock.is_edge(edge)
        # No edge strictly between tick and edge.
        if edge > tick:
            assert (edge - period) < tick

    @given(st.integers(min_value=1, max_value=97),
           st.integers(min_value=0, max_value=10_000))
    def test_following_edge_strictly_after(self, period, tick):
        clock = Clock(Simulator(), period=period)
        edge = clock.following_edge(tick)
        assert edge > tick
        assert clock.is_edge(edge)


class TestRingDistanceProperties:
    @given(st.integers(min_value=2, max_value=64),
           st.data())
    def test_distance_is_minimal_and_consistent(self, k, data):
        a = data.draw(st.integers(min_value=0, max_value=k - 1))
        b = data.draw(st.integers(min_value=0, max_value=k - 1))
        hops, direction = ring_distance(a, b, k)
        assert 0 <= hops <= k // 2
        # Walking `hops` steps in `direction` reaches b.
        assert (a + direction * hops) % k == b
        # Symmetry of the hop count.
        assert ring_distance(b, a, k)[0] == hops


class TestCoordProperties:
    @given(st.lists(st.integers(min_value=1, max_value=9), min_size=1,
                    max_size=5), st.data())
    def test_round_trip(self, widths, data):
        total = 1
        for width in widths:
            total *= width
        index = data.draw(st.integers(min_value=0, max_value=total - 1))
        coords = index_to_coords(index, widths)
        assert coords_to_index(coords, widths) == index
        assert all(0 <= c < w for c, w in zip(coords, widths))


class TestCreditTrackerProperties:
    @given(st.integers(min_value=1, max_value=32),
           st.lists(st.booleans(), max_size=200))
    def test_never_negative_never_over_capacity(self, capacity, ops):
        tracker = CreditTracker([capacity])
        for take in ops:
            if take:
                if tracker.has_credit(0):
                    tracker.take(0)
            else:
                if tracker.occupancy(0) > 0:
                    tracker.give(0)
            assert 0 <= tracker.available(0) <= capacity
            assert tracker.available(0) + tracker.occupancy(0) == capacity


class TestArbiterProperties:
    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_round_robin_always_grants_a_requester(self, size, data):
        arbiter = RoundRobinArbiter(size)
        for _round in range(10):
            indices = data.draw(
                st.lists(st.integers(min_value=0, max_value=size - 1),
                         unique=True, max_size=size)
            )
            requests = [(i, None) for i in indices]
            winner = arbiter.arbitrate(requests)
            if indices:
                assert winner in indices
            else:
                assert winner is None

    @given(st.integers(min_value=2, max_value=8),
           st.integers(min_value=1, max_value=20))
    def test_round_robin_starvation_freedom(self, size, rounds):
        """Under persistent full contention, every requester wins within
        `size` consecutive grants."""
        arbiter = RoundRobinArbiter(size)
        requests = [(i, None) for i in range(size)]
        wins = [arbiter.arbitrate(list(requests)) for _ in range(size * rounds)]
        for start in range(0, len(wins) - size + 1, size):
            assert set(wins[start:start + size]) == set(range(size))


class TestOverrideProperties:
    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=4),
           st.integers(min_value=0, max_value=10**9))
    def test_uint_override_round_trip(self, path_letters, value):
        path = ".".join(path_letters)
        parsed_path, parsed_value = parse_override(f"{path}=uint={value}")
        root = {}
        apply_override(root, parsed_path, parsed_value)
        node = root
        for key in parsed_path[:-1]:
            node = node[key]
        assert node[parsed_path[-1]] == value

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    def test_float_override_round_trip(self, value):
        _path, parsed = parse_override(f"x=float={value!r}")
        assert parsed == float(repr(value))


class TestLatencyDistributionProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1,
                    max_size=300))
    def test_percentiles_monotone_and_bounded(self, samples):
        dist = LatencyDistribution(samples)
        previous = dist.minimum()
        for percent in (0, 25, 50, 75, 90, 99, 99.9, 100):
            value = dist.percentile(percent)
            assert dist.minimum() <= value <= dist.maximum()
            assert value >= previous
            previous = value

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=200))
    def test_percentile_is_a_sample(self, samples):
        dist = LatencyDistribution(samples)
        for percent in (50, 90, 99):
            assert dist.percentile(percent) in samples

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=2,
                    max_size=200))
    def test_cdf_properties(self, samples):
        dist = LatencyDistribution(samples)
        x, y = dist.cdf()
        assert list(x) == sorted(samples)
        assert y[-1] == 1.0
        assert all(0 < value <= 1.0 for value in y)


class TestSettingsProperties:
    @given(st.dictionaries(st.sampled_from("abcd"),
                           st.integers(min_value=-5, max_value=5),
                           min_size=1))
    def test_from_dict_round_trips_plain_data(self, data):
        settings = Settings.from_dict(data)
        assert settings.to_dict() == data

"""The example scripts are runnable and produce their headline output.

Only the quick examples run here (the studies take minutes); each is
executed in-process with its module namespace isolated.
"""

import runpy
import sys

import pytest


def run_example(path, capsys):
    sys.argv = [path]
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("examples/quickstart.py", capsys)
    assert "drained:         True" in out
    assert "p99" in out
    assert "slowest message" in out


def test_custom_model(capsys):
    out = run_example("examples/custom_model.py", capsys)
    assert "drained: True" in out
    assert "hot terminals" in out


def test_transient_blast_pulse(capsys):
    out = run_example("examples/transient_blast_pulse.py", capsys)
    assert "pulse burst" in out
    assert "|" in out  # the ASCII plot frame

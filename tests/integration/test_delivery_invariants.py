"""End-to-end invariants across every topology / router / routing combo.

For each configuration the network must:

* drain completely (every sampled message delivered),
* conserve flits (injected == ejected),
* restore every credit and empty every buffer (quiescence),
* deliver in order per packet and to the right destination (checked
  continuously by the interfaces, §IV-D -- a violation raises).
"""

import pytest

from tests.conftest import (
    assert_flit_conservation,
    assert_network_quiescent,
    run_config,
)


def base_workload(rate=0.15, size=2, traffic="uniform_random"):
    return {
        "applications": [{
            "type": "blast",
            "injection_rate": rate,
            "warmup_duration": 300,
            "generate_duration": 1200,
            "traffic": {"type": traffic},
            "message_size": {"type": "constant", "size": size},
        }]
    }


CONFIGS = {
    "torus_iq_dor": {
        "network": {
            "topology": "torus",
            "dimension_widths": [4, 4],
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 16, "core_latency": 2},
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": base_workload(),
    },
    "torus_3d_adaptive": {
        "network": {
            "topology": "torus",
            "dimension_widths": [3, 3, 3],
            "concentration": 1,
            "num_vcs": 4,
            "channel_latency": 1,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1},
            "interface": {"max_packet_size": 4},
            "routing": {"algorithm": "torus_minimal_adaptive"},
        },
        "workload": base_workload(),
    },
    "clos_oq_adaptive": {
        "network": {
            "topology": "folded_clos",
            "half_radix": 4, "num_levels": 2,
            "num_vcs": 1,
            "channel_latency": 4,
            "router": {"architecture": "output_queued",
                       "input_queue_depth": 32, "core_latency": 4,
                       "output_queue_depth": 64,
                       "congestion_sensor": {"latency": 2,
                                             "source": "output",
                                             "granularity": "port"}},
            "interface": {"max_packet_size": 1, "ejection_buffer_size": 32},
            "routing": {"algorithm": "clos_adaptive"},
        },
        "workload": base_workload(size=1, traffic="uniform_to_root"),
    },
    "clos_oq_deterministic": {
        "network": {
            "topology": "folded_clos",
            "half_radix": 2, "num_levels": 3,
            "num_vcs": 1,
            "channel_latency": 2,
            "router": {"architecture": "output_queued",
                       "input_queue_depth": 16, "core_latency": 2,
                       "output_queue_depth": None,
                       "congestion_sensor": {"latency": 1,
                                             "source": "output"}},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": "clos_deterministic"},
        },
        "workload": base_workload(),
    },
    "hyperx_ioq_ugal": {
        "network": {
            "topology": "hyperx",
            "dimension_widths": [8], "concentration": 4,
            "num_vcs": 2,
            "channel_latency": 4,
            "channel_period": 2,
            "router": {"architecture": "input_output_queued",
                       "input_queue_depth": 16, "core_latency": 2,
                       "output_queue_depth": 32,
                       "congestion_sensor": {"latency": 2,
                                             "source": "both",
                                             "granularity": "port"}},
            "interface": {"max_packet_size": 1},
            "routing": {"algorithm": "hyperx_ugal", "ugal_bias": 0.0},
        },
        "workload": base_workload(size=1, traffic="bit_complement"),
    },
    "hyperx_2d_valiant": {
        "network": {
            "topology": "hyperx",
            "dimension_widths": [3, 3], "concentration": 1,
            "num_vcs": 4,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": "hyperx_valiant"},
        },
        "workload": base_workload(traffic="tornado"),
    },
    "dragonfly_minimal": {
        "network": {
            "topology": "dragonfly",
            "group_size": 4, "global_links": 1, "concentration": 1,
            "num_vcs": 3,
            "channel_latency": 2,
            "global_latency": 6,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": "dragonfly_minimal"},
        },
        "workload": base_workload(),
    },
    "dragonfly_ugal": {
        "network": {
            "topology": "dragonfly",
            "group_size": 2, "global_links": 2, "concentration": 2,
            "num_vcs": 5,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1,
                       "congestion_sensor": {"latency": 1,
                                             "source": "downstream",
                                             "granularity": "port"}},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": "dragonfly_ugal"},
        },
        "workload": base_workload(rate=0.1),
    },
    "parking_lot_age_based": {
        "network": {
            "topology": "parking_lot",
            "length": 4, "concentration": 1,
            "num_vcs": 1,
            "channel_latency": 1,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1,
                       "crossbar_scheduler": {
                           "arbiter": {"type": "age_based"}}},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": "chain"},
        },
        "workload": base_workload(rate=0.1, traffic="all_to_one"),
    },
    "torus_ioq_wta": {
        "network": {
            "topology": "torus",
            "dimension_widths": [4], "concentration": 2,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": {"architecture": "input_output_queued",
                       "input_queue_depth": 16, "core_latency": 2,
                       "output_queue_depth": 16,
                       "crossbar_scheduler": {
                           "flow_control": "winner_take_all"}},
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": base_workload(size=6),
    },
    "torus_iq_packet_buffer": {
        "network": {
            "topology": "torus",
            "dimension_widths": [4], "concentration": 2,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 16, "core_latency": 2,
                       "crossbar_scheduler": {
                           "flow_control": "packet_buffer"}},
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": base_workload(size=6),
    },
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_invariants(name):
    config = {"simulator": {"seed": 23}}
    config.update(CONFIGS[name])
    simulation, results = run_config(config, max_time=400_000)
    assert results.drained, f"{name}: did not drain"
    assert results.delivered_fraction() == 1.0
    assert_flit_conservation(simulation.network)
    assert_network_quiescent(simulation.network)
    latency = results.latency()
    assert not latency.empty
    assert latency.minimum() > 0

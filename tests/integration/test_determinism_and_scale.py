"""Cross-cutting integration properties: determinism, latency physics."""

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


def test_bitwise_deterministic_event_counts():
    """Two identical runs execute the exact same number of events."""
    a = Simulation(Settings.from_dict(small_torus_config()))
    a.run(max_time=200_000)
    b = Simulation(Settings.from_dict(small_torus_config()))
    b.run(max_time=200_000)
    assert a.simulator.executed_events == b.simulator.executed_events
    assert a.simulator.tick == b.simulator.tick
    lat_a = [r.latency for r in a.message_log.records]
    lat_b = [r.latency for r in b.message_log.records]
    assert lat_a == lat_b


def test_zero_load_latency_matches_physics():
    """At near-zero load, message latency approaches the sum of wire,
    router, and serialization delays -- no queueing."""
    config = small_torus_config(injection_rate=0.01)
    config["workload"]["applications"][0]["message_size"] = {
        "type": "constant", "size": 1}
    _sim, results = run_config(config)
    # Minimum possible: 2 terminal links (1 tick each) + up to 4 ring
    # hops (2 ticks each) + per-router core latency (2 ticks each).
    minimum = results.latency().minimum()
    assert minimum >= 1 + 1 + 2  # at least: two terminal links + a core
    # Mean should be close to the minimum at this load (no queueing).
    assert results.latency().mean() < 4 * minimum


def test_latency_grows_with_load():
    means = []
    for rate in (0.1, 0.5, 0.75):
        config = small_torus_config(injection_rate=rate)
        _sim, results = run_config(config)
        means.append(results.latency().mean())
    assert means[0] < means[1] < means[2]


def test_throughput_tracks_offered_below_saturation():
    for rate in (0.1, 0.3, 0.5):
        config = small_torus_config(injection_rate=rate)
        _sim, results = run_config(config)
        assert results.accepted_load() == pytest.approx(rate, abs=0.05)


def test_hop_count_measured_matches_topology_minimum():
    """Under DOR (minimal), measured hops == minimal hops + 1 (the
    destination router also counts a hop when ejecting)."""
    _sim, results = run_config(small_torus_config())
    network = _sim.network
    for record in results.records()[:200]:
        expected = network.minimal_hops(record.source, record.destination)
        for packet in record.packets:
            assert packet.hop_count == expected + 1

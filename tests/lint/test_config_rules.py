"""Config-layer rules C001..C009 on seeded defects and clean configs."""

from __future__ import annotations

import copy

import pytest

from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
)
from repro.lint import lint_config_dict


def _rule_ids(report):
    return sorted({f.rule_id for f in report.findings})


def _lint(config, **kwargs):
    kwargs.setdefault("graph", False)
    return lint_config_dict(config, **kwargs)


@pytest.fixture()
def torus_config():
    return copy.deepcopy(blast_pulse_config())


def test_unknown_key_c001_with_did_you_mean(torus_config):
    torus_config["network"]["chanel_latency"] = 4
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C001"]
    assert finding.severity.value == "warning"
    assert finding.config_path == "network.chanel_latency"
    assert "channel_latency" in (finding.suggestion or "")


def test_wrong_type_c002(torus_config):
    torus_config["network"]["num_vcs"] = "two"
    report = _lint(torus_config)
    assert any(
        f.rule_id == "C002" and f.config_path == "network.num_vcs"
        for f in report.errors
    )


def test_bad_value_c003(torus_config):
    torus_config["network"]["router"]["input_queue_depth"] = 0
    report = _lint(torus_config)
    assert any(
        f.rule_id == "C003"
        and f.config_path == "network.router.input_queue_depth"
        for f in report.errors
    )


def test_bad_choice_c003(torus_config):
    torus_config["network"]["router"]["crossbar_scheduler"] = {
        "flow_control": "packet_bufer"
    }
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C003"]
    assert "packet_buffer" in (finding.suggestion or "")


def test_missing_required_c004(torus_config):
    del torus_config["network"]["routing"]
    report = _lint(torus_config)
    assert any(
        f.rule_id == "C004" and f.config_path == "network.routing"
        for f in report.errors
    )


def test_missing_root_block_c004():
    report = _lint({"network": blast_pulse_config()["network"]})
    assert any(
        f.rule_id == "C004" and f.config_path == "workload"
        for f in report.errors
    )


def test_unknown_model_c005_with_did_you_mean(torus_config):
    torus_config["network"]["routing"]["algorithm"] = "torus_dimension_ordr"
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C005"]
    assert finding.severity.value == "error"
    assert "torus_dimension_order" in (finding.suggestion or "")


def test_registered_custom_model_opens_block(torus_config):
    # A registered user model makes its block schema-open: custom keys
    # must not produce C001 noise.
    torus_config["network"]["interface"]["type"] = "standard"
    torus_config["network"]["interface"]["ejection_buffer_size"] = 64
    report = _lint(torus_config)
    assert _rule_ids(report) == []


def test_routing_topology_mismatch_c006(torus_config):
    torus_config["network"]["routing"]["algorithm"] = "hyperx_dimension_order"
    report = _lint(torus_config)
    assert any(f.rule_id == "C006" for f in report.errors)


def test_vc_discipline_c007(torus_config):
    torus_config["network"]["num_vcs"] = 3
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C007"]
    assert finding.config_path == "network.num_vcs"
    assert "even" in finding.message


def test_injection_vcs_out_of_range_c007(torus_config):
    torus_config["network"]["interface"]["injection_vcs"] = [0, 7]
    report = _lint(torus_config)
    assert any(
        f.rule_id == "C007"
        and f.config_path == "network.interface.injection_vcs"
        and f.severity.value == "error"
        for f in report.findings
    )


def test_injection_vcs_outside_class_warns_c007(torus_config):
    # VC 1 exists but is dateline class 1: packets must inject in class 0.
    torus_config["network"]["interface"]["injection_vcs"] = [1]
    report = _lint(torus_config)
    assert any(
        f.rule_id == "C007" and f.severity.value == "warning"
        for f in report.findings
    )


def test_credit_buffer_depth_c008(torus_config):
    torus_config["network"]["router"]["crossbar_scheduler"] = {
        "flow_control": "packet_buffer"
    }
    torus_config["network"]["router"]["input_queue_depth"] = 8
    torus_config["network"]["interface"]["max_packet_size"] = 16
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C008"]
    assert finding.severity.value == "error"
    assert finding.config_path == "network.router.input_queue_depth"


def test_c008_checks_output_queue_for_ioq():
    config = copy.deepcopy(credit_accounting_config())
    config["network"]["router"]["crossbar_scheduler"] = {
        "flow_control": "packet_buffer"
    }
    config["network"]["router"]["output_queue_depth"] = 2
    config["network"].setdefault("interface", {})["max_packet_size"] = 8
    report = _lint(config)
    (finding,) = [f for f in report.findings if f.rule_id == "C008"]
    assert finding.config_path == "network.router.output_queue_depth"


def test_ejection_bdp_c009(torus_config):
    torus_config["network"]["terminal_channel_latency"] = 100
    torus_config["network"]["interface"]["ejection_buffer_size"] = 8
    report = _lint(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "C009"]
    assert finding.severity.value == "warning"


@pytest.mark.parametrize(
    "builder",
    [
        blast_pulse_config,
        credit_accounting_config,
        flow_control_config,
        latent_congestion_config,
    ],
    ids=lambda b: b.__name__,
)
def test_shipped_configs_lint_clean(builder):
    report = lint_config_dict(builder(), max_pairs=128)
    assert report.findings == [], report.render_text()

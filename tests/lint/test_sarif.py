"""SARIF export and fingerprint baselines (sslint --format sarif)."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import Finding, LintReport, Severity, lint_sources
from repro.lint.sarif import (
    FINGERPRINT_KEY,
    apply_baseline,
    fingerprint,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.tools.sslint import sslint_main

HAZARD = """
    import random

    class SlightlyBroken:
        def pick(self):
            return random.random()

        def arm(self):
            self.pending = self.simulator.call_at(10, self.fire)
    """


@pytest.fixture
def hazard_path(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(textwrap.dedent(HAZARD))
    return str(path)


def test_sarif_log_shape(hazard_path):
    report = lint_sources([hazard_path], subject="sources")
    log = to_sarif([report])
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "sslint"
    results = run["results"]
    assert results, "hazard file should produce findings"
    rule_ids = {r["ruleId"] for r in results}
    assert "D001" in rule_ids and "E001" in rule_ids
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert rule_ids <= declared
    for result in results:
        assert result["level"] in ("error", "warning", "note")
        assert result["message"]["text"]
        assert FINGERPRINT_KEY in result["partialFingerprints"]
        physical = result["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == hazard_path
        assert physical["region"]["startLine"] >= 1


def test_sarif_config_findings_use_logical_locations():
    report = LintReport(subject="myconfig.json")
    report.add(
        Finding(
            "C003",
            Severity.ERROR,
            "bad value",
            config_path="network.num_vcs",
        )
    )
    log = to_sarif([report])
    location = log["runs"][0]["results"][0]["locations"][0]
    logical = location["logicalLocations"][0]
    assert logical["fullyQualifiedName"] == "network.num_vcs"


def test_fingerprint_v2_partition_findings_are_message_insensitive():
    # Graph/partition findings without a source location quote
    # network-derived quantities (cut counts, lookahead values) that
    # drift as the planner evolves; the v2 fingerprint pins only
    # rule + subject + config path.
    a = Finding("P003", Severity.ERROR, "lookahead 5 exceeds 4",
                config_path="partition.lookahead")
    b = Finding("P003", Severity.ERROR, "lookahead 7 exceeds 6",
                config_path="partition.lookahead")
    c = Finding("P003", Severity.ERROR, "lookahead 5 exceeds 4",
                config_path="partition.shards")
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(c)
    assert fingerprint(a, "cfg-1") != fingerprint(a, "cfg-2")
    # Config-layer findings still pin the message (it carries the
    # offending value).
    d = Finding("C003", Severity.ERROR, "num_vcs is 3",
                config_path="network.num_vcs")
    e = Finding("C003", Severity.ERROR, "num_vcs is 5",
                config_path="network.num_vcs")
    assert fingerprint(d) != fingerprint(e)
    # Partition AST findings carry a source location and keep the
    # message like every other source-layer rule.
    f = Finding("P006", Severity.WARNING, "touches self.peer.x",
                location="model.py:10")
    g = Finding("P006", Severity.WARNING, "touches self.peer.y",
                location="model.py:10")
    assert fingerprint(f) != fingerprint(g)


def test_fingerprint_key_is_versioned():
    assert FINGERPRINT_KEY == "sslintFingerprint/v2"


def test_fingerprint_is_line_insensitive_but_content_sensitive():
    a = Finding("E001", Severity.WARNING, "handle retained",
                location="model.py:10")
    b = Finding("E001", Severity.WARNING, "handle retained",
                location="model.py:99")
    c = Finding("E001", Severity.WARNING, "handle retained",
                location="other.py:10")
    d = Finding("E002", Severity.WARNING, "handle retained",
                location="model.py:10")
    assert fingerprint(a) == fingerprint(b)
    assert fingerprint(a) != fingerprint(c)
    assert fingerprint(a) != fingerprint(d)
    assert fingerprint(a, "subject-1") != fingerprint(a, "subject-2")


def test_baseline_roundtrip_suppresses_known_findings(tmp_path, hazard_path):
    report = lint_sources([hazard_path], subject="sources")
    baseline_path = str(tmp_path / "baseline.json")
    count = write_baseline(baseline_path, [report])
    assert count == len({
        fingerprint(f, report.subject) for f in report.findings
    })
    baseline = load_baseline(baseline_path)
    filtered = apply_baseline([report], baseline)
    assert all(not r.findings for r in filtered)
    # Original report untouched.
    assert report.findings


def test_baseline_lets_new_findings_through(tmp_path, hazard_path):
    report = lint_sources([hazard_path], subject="sources")
    baseline_path = str(tmp_path / "baseline.json")
    write_baseline(baseline_path, [report])
    # A new hazard appears in a different file.
    new_path = tmp_path / "fresh.py"
    new_path.write_text("import time\nNOW = time.time()\n")
    combined = lint_sources([hazard_path, str(new_path)], subject="sources")
    filtered = apply_baseline([combined], load_baseline(baseline_path))
    remaining = [f for r in filtered for f in r.findings]
    assert remaining
    assert all(f.location.startswith(str(new_path)) for f in remaining)


def test_load_baseline_rejects_non_baseline_json(tmp_path):
    path = tmp_path / "notabaseline.json"
    path.write_text(json.dumps([1, 2, 3]))
    with pytest.raises(ValueError):
        load_baseline(str(path))


def test_sslint_cli_sarif_and_baseline_flow(tmp_path, hazard_path, capsys):
    # SARIF output parses and carries the findings.
    assert sslint_main([hazard_path, "--format", "sarif"]) == 0
    log = json.loads(capsys.readouterr().out)
    assert log["runs"][0]["results"]

    # Record the baseline, then gate against it: nothing new -> clean.
    baseline = str(tmp_path / "baseline.json")
    assert sslint_main([hazard_path, "--write-baseline", baseline]) == 0
    capsys.readouterr()
    assert sslint_main([hazard_path, "--baseline", baseline,
                        "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 0
    assert all(not r["findings"] for r in payload["reports"])


def test_sslint_cli_baseline_gates_on_new_errors_only(tmp_path, capsys):
    # An error-severity finding (E006) in the baseline must not fail
    # the gate; the same finding without a baseline must.
    path = tmp_path / "badmodel.py"
    path.write_text(textwrap.dedent("""
        def resurrect(event):
            event.fired = False
        """))
    assert sslint_main([str(path)]) == 1
    capsys.readouterr()
    baseline = str(tmp_path / "baseline.json")
    sslint_main([str(path), "--write-baseline", baseline])
    capsys.readouterr()
    assert sslint_main([str(path), "--baseline", baseline]) == 0
    capsys.readouterr()

"""Determinism-layer rules D001..D005."""

from __future__ import annotations

import textwrap

import pytest

from repro.configs import blast_pulse_config
from repro.lint import lint_sources, lint_sweep
from repro.tools.sssweep import Sweep

HAZARD_SOURCE = textwrap.dedent(
    """
    import random
    import time as walltime
    import numpy as np
    from numpy.random import default_rng
    from repro.tools.sssweep import Sweep

    HITS = 0

    def pick(n):
        global HITS
        HITS += 1
        return random.randint(0, n) + int(walltime.time())

    def legacy():
        return np.random.rand()

    def fine(rng):
        # Seeded construction and generator draws are allowed.
        gen = default_rng(1234)
        return gen.integers(0, 10) + rng.random()

    def build(config):
        return Sweep(config, collect=lambda results: results.summary())
    """
)


@pytest.fixture()
def hazard_path(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(HAZARD_SOURCE)
    return str(path)


def _ids(report):
    return sorted({f.rule_id for f in report.findings})


def test_hazard_file_trips_d001_to_d004(hazard_path):
    report = lint_sources([hazard_path])
    assert _ids(report) == ["D001", "D002", "D003", "D004"]
    assert not report.has_errors()  # AST findings are warnings
    # Locations carry file:line.
    for finding in report.findings:
        assert finding.location.startswith(hazard_path)


def test_d001_flags_global_rng_not_seeded_constructors(hazard_path):
    report = lint_sources([hazard_path])
    messages = [f.message for f in report.findings if f.rule_id == "D001"]
    assert any("random.randint" in m for m in messages)
    assert any("numpy.random.rand" in m for m in messages)
    assert not any("default_rng" in m for m in messages)


def test_clean_file_has_no_findings(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(
        textwrap.dedent(
            """
            def traffic(rng, terminals):
                return int(rng.integers(0, terminals))
            """
        )
    )
    report = lint_sources([str(path)])
    assert report.findings == []


def test_unparseable_file_is_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    report = lint_sources([str(path)])
    # One parse finding per AST layer (determinism D001, dataflow E001),
    # not one per rule.
    assert _ids(report) == ["D001", "E001"]
    for finding in report.findings:
        assert "could not parse" in finding.message


def test_unpicklable_collect_fails_d005():
    sweep = Sweep(
        blast_pulse_config(),
        name="bad",
        collect=lambda results: results.summary(),
    )
    sweep.add_variable(
        "Rate", "R", [0.1], lambda v: f"workload.applications.0.injection_rate=float={v}"
    )
    report = lint_sweep(sweep)
    errors = [f for f in report.errors if f.rule_id == "D005"]
    assert errors, report.render_text()
    assert "collect" in errors[0].message


def test_picklable_sweep_passes_and_catches_bad_point_configs():
    sweep = Sweep(blast_pulse_config(), name="ok")
    sweep.add_variable(
        "Vcs", "V", [2, 3], lambda v: f"network.num_vcs=uint={v}"
    )
    report = lint_sweep(sweep)
    # The resolved V3 point violates the dateline VC discipline and must
    # be caught before fan-out, tagged with its sweep point id.
    assert any(
        f.rule_id == "C007" and "[V3]" in f.message for f in report.errors
    )
    assert not any(f.rule_id == "D005" for f in report.findings)

"""Deliberately shard-unsafe model classes, one per S-rule.

Mutation fixtures for the shard-purity analyzer
(:mod:`repro.lint.shard_rules`): each class commits exactly one
category of shard-isolation sin, so the tests can assert rule-by-rule
that every S-rule actually fires on the hazard it documents -- and
that :func:`repro.partition.runtime.validate_sharded_scope` rejects
these models by *verdict*, not by name (none of the names below appear
on any list anywhere in the runtime).

The classes are registered with the factory at import time but never
instantiated; they only need to be statically plausible.
"""

from __future__ import annotations

import itertools
from typing import List

from repro import factory
from repro.net.message import Message
from repro.routing.base import Candidate, RoutingAlgorithm
from repro.routing.torus import TorusDimensionOrderRouting
from repro.workload.application import Application

#: module-level id counter and event log: per-process state that S004
#: must catch when a handler path touches it.
_PACKET_SERIALS = itertools.count(0)
_DELIVERY_LOG: List[int] = []


@factory.register(RoutingAlgorithm, "sneaky_hop_local_vc")
class SneakyHopLocalVcRouting(TorusDimensionOrderRouting):
    """S001: reads packet.hop_count at head time for VC selection.

    The name deliberately shares no prefix with dragonfly/hyperx: the
    old blocklist (``algorithm.startswith(("dragonfly", "hyperx"))``)
    would have admitted it, silently diverging under sharding.
    """

    topology = "torus"

    def route(self, packet, input_vc: int) -> List[Candidate]:
        candidates = super().route(packet, input_vc)
        # hop_count is bumped as the *tail* leaves a router; reading it
        # at head time is exactly the dragonfly/hyperx hazard.
        rotation = packet.hop_count % len(candidates)
        return candidates[rotation:] + candidates[:rotation]


@factory.register(Application, "delivery_gated_app")
class DeliveryGatedApplication(Application):
    """S002: signals Complete from locally observed deliveries."""

    def on_init(self) -> None:
        self.ready()

    def on_start(self) -> None:
        self.sampling = True

    def on_stop(self) -> None:
        self.sampling = False

    def on_kill(self) -> None:
        self.stop_terminals()

    def on_message_delivered(self, message: Message) -> None:
        if self.messages_delivered >= self.messages_created:
            self.complete()


@factory.register(Application, "network_snoop_app")
class NetworkSnoopApplication(Application):
    """S003: walks the whole-network router registry from a handler."""

    def on_init(self) -> None:
        self.ready()

    def on_start(self) -> None:
        self.sampling = True
        backlog = sum(
            router.num_vcs for router in self.network.routers
        )
        self._observed_backlog = backlog

    def on_stop(self) -> None:
        self.sampling = False

    def on_kill(self) -> None:
        self.stop_terminals()


@factory.register(Application, "module_state_app")
class ModuleStateApplication(Application):
    """S004: draws module-level ids and appends to a module log."""

    def on_init(self) -> None:
        self.ready()

    def on_start(self) -> None:
        self.sampling = True

    def on_stop(self) -> None:
        self.sampling = False

    def on_kill(self) -> None:
        self.stop_terminals()

    def message_generated(self, message: Message) -> None:
        super().message_generated(message)
        message.serial = next(_PACKET_SERIALS)
        _DELIVERY_LOG.append(message.message_id)


@factory.register(Application, "rng_on_delivery_app")
class RngOnDeliveryApplication(Application):
    """S005: draws from an RNG stream on the delivery path."""

    def on_init(self) -> None:
        self.ready()

    def on_start(self) -> None:
        self.sampling = True

    def on_stop(self) -> None:
        self.sampling = False

    def on_kill(self) -> None:
        self.stop_terminals()

    def on_message_delivered(self, message: Message) -> None:
        self._last_jitter = self.random.random()

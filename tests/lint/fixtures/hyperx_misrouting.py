"""Deliberately broken HyperX routing algorithms for graph-layer tests.

Three user-model mistakes the ``sslint`` graph layer must catch on a
HyperX, mirroring ``naive_routing.py``'s torus example:

* ``hyperx_ring_step`` -- resolves each dimension with unit ring steps
  (treating the all-to-all dimension like a torus ring) on a single VC
  class: every dimension's channel dependency graph is a cycle, so the
  escape CDG is cyclic (G004).
* ``hyperx_wrong_eject`` -- always ejects at terminal port 0, so with
  concentration > 1 a packet for any other terminal of the router
  leaves at the wrong interface (G006).
* ``hyperx_dead_end`` -- returns no candidates for any packet that
  still has router hops to make (G003).
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm


class _BrokenHyperXBase(RoutingAlgorithm):
    topology = "hyperx"  # user-algorithm compatibility declaration

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.coords = router.address
        self.widths = network.widths

    def _ejection(self, packet) -> List[Candidate]:
        port = self.network.terminal_port(packet.destination)
        return [(port, vc) for vc in range(self.router.num_vcs)]


@factory.register(RoutingAlgorithm, "hyperx_ring_step")
class HyperXRingStepRouting(_BrokenHyperXBase):
    """Unit ring steps per dimension, one VC class: cyclic escape CDG."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return self._ejection(packet)
        dst_coords = self.network.router_coords(dst_router)
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own == dst:
                continue
            step = (own + 1) % self.widths[dim]
            port = self.network.port_for(dim, own, step)
            return [(port, vc) for vc in range(self.router.num_vcs)]
        raise AssertionError("unreachable: not at destination router")


@factory.register(RoutingAlgorithm, "hyperx_wrong_eject")
class HyperXWrongEjectRouting(_BrokenHyperXBase):
    """Minimal DOR, but every ejection goes to terminal port 0."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return [(0, vc) for vc in range(self.router.num_vcs)]
        dst_coords = self.network.router_coords(dst_router)
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own != dst:
                port = self.network.port_for(dim, own, dst)
                return [(port, vc) for vc in range(self.router.num_vcs)]
        raise AssertionError("unreachable: not at destination router")


@factory.register(RoutingAlgorithm, "hyperx_dead_end")
class HyperXDeadEndRouting(_BrokenHyperXBase):
    """No candidates unless the packet is already at its router."""

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            return self._ejection(packet)
        return []

"""A deliberately deadlock-prone torus routing algorithm.

Plain minimal dimension-order routing *without* the dateline VC scheme:
every ring's channel dependency graph is a cycle, so the escape CDG is
cyclic and ``sslint`` must flag it (rule G004).  Loaded by the lint
tests (and demonstrable via ``sslint --import``) to prove the graph
layer catches user routing algorithms that the packaged compatibility
lists cannot vouch for.
"""

from __future__ import annotations

from typing import List

from repro import factory
from repro.routing.base import Candidate, RoutingAlgorithm
from repro.topology.util import ring_distance


@factory.register(RoutingAlgorithm, "naive_torus_minimal")
class NaiveTorusMinimalRouting(RoutingAlgorithm):
    """Minimal DOR on a torus with no dateline: cyclic escape CDG."""

    topology = "torus"  # user-algorithm compatibility declaration

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self.coords = router.address
        self.widths = network.widths

    def route(self, packet, input_vc: int) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router == self.router.router_id:
            port = self.network.terminal_port(packet.destination)
            return [(port, vc) for vc in range(self.router.num_vcs)]
        dst_coords = self.network.router_coords(dst_router)
        for dim, (own, dst) in enumerate(zip(self.coords, dst_coords)):
            if own == dst:
                continue
            _hops, direction = ring_distance(own, dst, self.widths[dim])
            port = self.network.port_for(dim, direction)
            return [(port, vc) for vc in range(self.router.num_vcs)]
        raise AssertionError("unreachable: not at destination router")

"""Deliberately slow model classes, one per H-rule.

Mutation fixtures for the hot-path perf analyzer
(:mod:`repro.lint.perf_rules`): each class commits exactly one
category of hot-path sin inside a method the heat analysis proves hot
(``route``/``respond`` are per-event entry points for routing models),
so the tests can assert rule-by-rule that every H-rule actually fires
on the hazard it documents -- with the evidence chain naming the entry
point that makes the method hot.

The classes are registered with the factory at import time but never
instantiated; they only need to be statically plausible.  A final
fixture keeps its hazards in construction-time helpers no entry point
reaches, proving cold code is never flagged.
"""

from __future__ import annotations

from repro import factory
from repro.routing.base import RoutingAlgorithm
from repro.routing.torus import TorusDimensionOrderRouting

#: module-level tally the H006 fixture writes through ``global``.
_ROUTE_TALLY = 0


class HopNote:
    """A note class without ``__slots__`` -- the H005 bait."""

    def __init__(self, port: int, vc: int):
        self.port = port
        self.vc = vc


@factory.register(RoutingAlgorithm, "alloc_trail_routing")
class AllocTrailRouting(TorusDimensionOrderRouting):
    """H001: stores a fresh list on ``self`` per route() call."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        self._trail = [candidate.port for candidate in candidates]
        return candidates


@factory.register(RoutingAlgorithm, "closure_sort_routing")
class ClosureSortRouting(TorusDimensionOrderRouting):
    """H002: allocates a lambda per route() call."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = list(super().route(packet, input_vc))
        candidates.sort(key=lambda candidate: candidate.vc)
        return candidates


@factory.register(RoutingAlgorithm, "chain_happy_routing")
class ChainHappyRouting(TorusDimensionOrderRouting):
    """H003: reloads ``self.router.num_vcs`` on every loop iteration."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        usable = 0
        for candidate in candidates:
            if candidate.vc < self.router.num_vcs:
                usable += 1
            elif candidate.port < self.router.num_vcs:
                usable -= 1
        return candidates


@factory.register(RoutingAlgorithm, "chatty_trace_routing")
class ChattyTraceRouting(TorusDimensionOrderRouting):
    """H004: builds an f-string per event, two helpers deep."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        self._note_hop(packet)
        return candidates

    def _note_hop(self, packet) -> None:
        self.last_note = f"hop {packet.source}->{packet.destination}"


@factory.register(RoutingAlgorithm, "noteful_routing")
class NotefulRouting(TorusDimensionOrderRouting):
    """H005: instantiates a dict-carrying class per route() call."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        self._note = HopNote(candidates[0].port, candidates[0].vc)
        return candidates


@factory.register(RoutingAlgorithm, "flaky_probe_routing")
class FlakyProbeRouting(TorusDimensionOrderRouting):
    """H006: try/except inside a hot loop, ``global`` in respond()."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        for candidate in candidates:
            try:
                candidate.port
            except AttributeError:
                pass
        return candidates

    def respond(self, packet, input_vc: int):
        global _ROUTE_TALLY
        _ROUTE_TALLY += 1
        return super().respond(packet, input_vc)


@factory.register(RoutingAlgorithm, "type_sniff_routing")
class TypeSniffRouting(TorusDimensionOrderRouting):
    """H007: isinstance() dispatch per route() call."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        if isinstance(packet.message, dict):
            return candidates[::-1]
        return candidates


@factory.register(RoutingAlgorithm, "table_thrash_routing")
class TableThrashRouting(TorusDimensionOrderRouting):
    """H008: recomputes ``self.bias_table[input_vc]`` three times."""

    topology = "torus"

    def route(self, packet, input_vc: int):
        candidates = super().route(packet, input_vc)
        low = min(input_vc, self.bias_table[input_vc])
        high = max(input_vc, self.bias_table[input_vc])
        self._bias = self.bias_table[input_vc]
        return candidates[low:high] or candidates


@factory.register(RoutingAlgorithm, "cold_setup_routing")
class ColdSetupRouting(TorusDimensionOrderRouting):
    """Hazards only in construction-time code: must never be flagged.

    ``_build_bias``'s allocations and f-strings would trip H001/H004 in
    a hot method, but no per-event entry point reaches it -- the heat
    analysis must leave it out of the audit entirely.
    """

    topology = "torus"

    def _build_bias(self) -> None:
        self._bias_rows = [list(range(8)) for _ in range(8)]
        self._bias_label = f"bias[{len(self._bias_rows)}]"

"""Acceptance: everything the repo ships lints clean.

Zero error-severity findings over every built-in benchmark config
(config + graph layers), every Table I full-scale config (config
layer), and every example script (determinism layer).
"""

from __future__ import annotations

import pathlib

import pytest

from repro import configs
from repro.lint import lint_config_dict, lint_sources

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_BUILDERS = [
    configs.blast_pulse_config,
    configs.credit_accounting_config,
    configs.flow_control_config,
    configs.latent_congestion_config,
]


@pytest.mark.parametrize("builder", _BUILDERS, ids=lambda b: b.__name__)
def test_benchmark_config_has_zero_errors(builder):
    report = lint_config_dict(builder(), max_pairs=256)
    assert not report.has_errors(), report.render_text()


@pytest.mark.parametrize("column", sorted(configs.table1()))
def test_table1_config_has_zero_errors(column):
    report = lint_config_dict(configs.table1()[column], graph=False)
    assert not report.has_errors(), report.render_text()


def test_example_scripts_have_zero_errors():
    examples = sorted((REPO_ROOT / "examples").glob("*.py"))
    assert examples, "examples/ directory is missing"
    report = lint_sources([str(path) for path in examples])
    assert not report.has_errors(), report.render_text()


def test_packaged_workload_sources_have_zero_errors():
    sources = sorted((REPO_ROOT / "src" / "repro" / "workload").glob("*.py"))
    report = lint_sources([str(path) for path in sources])
    assert not report.has_errors(), report.render_text()

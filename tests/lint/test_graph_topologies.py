"""Graph-layer rules G001..G006 exercised over torus AND HyperX.

``test_graph_rules.py`` proves each rule's mechanics, mostly on the
torus.  This file is the topology-coverage matrix: every G rule has a
trigger (or an explicit clean counterpart) on both packaged topology
families, so a regression in one topology's wiring or routing metadata
cannot hide behind the other's tests.
"""

from __future__ import annotations

import copy

import pytest

from repro.config.settings import Settings
from repro.configs import blast_pulse_config
from repro.lint import lint_config_dict
from repro.lint.graph import GraphAnalysis
from repro.lint.rules import GRAPH_LAYER, LintContext, run_rules

from .fixtures import hyperx_misrouting  # noqa: F401 - registers algorithms
from .fixtures import naive_routing  # noqa: F401 - registers the algorithm


def _base_workload():
    return {
        "applications": [{
            "type": "blast",
            "injection_rate": 0.1,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 1},
        }]
    }


def hyperx_config(algorithm="hyperx_dimension_order", num_vcs=2,
                  widths=(3, 3), concentration=1):
    return {
        "network": {
            "topology": "hyperx",
            "dimension_widths": list(widths),
            "concentration": concentration,
            "num_vcs": num_vcs,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 8, "core_latency": 1},
            "interface": {"max_packet_size": 2},
            "routing": {"algorithm": algorithm},
        },
        "workload": _base_workload(),
    }


def torus_config():
    return copy.deepcopy(blast_pulse_config())


def _graph_report(config):
    """Run only the graph layer (bypasses the config-layer gate)."""
    ctx = LintContext(settings=Settings.from_dict(config))
    return run_rules(ctx, [GRAPH_LAYER])


def _rule_ids(report):
    return sorted({f.rule_id for f in report.findings})


# -- G001: construction failure ------------------------------------------------


def test_g001_torus_construction_failure():
    config = torus_config()
    config["network"]["num_vcs"] = 3  # odd VCs break the dateline scheme
    report = _graph_report(config)
    assert "G001" in _rule_ids(report)


def test_g001_hyperx_construction_failure():
    # Valiant needs num_vcs >= 2 hops per dimension; its constructor
    # raises during finalize, which the graph layer reports as G001.
    config = hyperx_config("hyperx_valiant", num_vcs=2)
    report = _graph_report(config)
    (finding,) = [f for f in report.findings if f.rule_id == "G001"]
    assert finding.severity.value == "error"
    assert "RoutingError" in finding.message


# -- G002: unwired ports (both families are fully wired) -----------------------


@pytest.mark.parametrize("config_fn", [torus_config, hyperx_config],
                         ids=["torus", "hyperx"])
def test_g002_torus_and_hyperx_have_no_unwired_ports(config_fn):
    analysis = GraphAnalysis(Settings.from_dict(config_fn()))
    assert analysis.constructed
    assert analysis.unwired_ports == []


# -- G003: invalid routing responses -------------------------------------------


def test_g003_hyperx_dead_end_routing():
    report = lint_config_dict(hyperx_config("hyperx_dead_end"))
    findings = [f for f in report.findings if f.rule_id == "G003"]
    assert findings, report.render_text()
    assert all(f.severity.value == "error" for f in findings)
    assert any("produced no route" in f.message for f in findings)


# -- G004: cyclic escape CDG ---------------------------------------------------


def test_g004_torus_without_dateline_deadlocks():
    config = torus_config()
    config["network"]["routing"]["algorithm"] = "naive_torus_minimal"
    report = lint_config_dict(config)
    (finding,) = [f for f in report.findings if f.rule_id == "G004"]
    assert "deadlock" in finding.message


def test_g004_hyperx_ring_stepping_deadlocks():
    """Treating the all-to-all dimension like a torus ring is deadlock."""
    report = lint_config_dict(hyperx_config("hyperx_ring_step"))
    (finding,) = [f for f in report.findings if f.rule_id == "G004"]
    assert finding.severity.value == "error"
    assert "deadlock" in finding.message


# -- G005: adaptive-class cycle with an acyclic escape -------------------------


def test_g005_torus_adaptive_is_info():
    config = torus_config()
    config["network"]["num_vcs"] = 4
    config["network"]["routing"]["algorithm"] = "torus_minimal_adaptive"
    report = lint_config_dict(config)
    assert _rule_ids(report) == ["G005"]
    assert report.findings[0].severity.value == "info"


@pytest.mark.parametrize("algorithm,num_vcs", [
    ("hyperx_dimension_order", 1),
    ("hyperx_dimension_order", 2),
    ("hyperx_valiant", 4),
], ids=["dor-1vc", "dor-2vc", "valiant"])
def test_hyperx_packaged_algorithms_have_acyclic_cdgs(algorithm, num_vcs):
    """No G004/G005 for the shipped HyperX algorithms: with hop-indexed
    VCs (and DOR even on one VC) both CDGs are fully acyclic."""
    analysis = GraphAnalysis(
        Settings.from_dict(hyperx_config(algorithm, num_vcs=num_vcs))
    )
    assert analysis.constructed
    assert analysis.pairs_traced > 0
    assert analysis.full_cycle is None
    assert analysis.escape_cycle is None


# -- G006: trace anomalies -----------------------------------------------------


def test_g006_hyperx_wrong_terminal_ejection():
    report = lint_config_dict(
        hyperx_config("hyperx_wrong_eject", concentration=2)
    )
    findings = [f for f in report.findings if f.rule_id == "G006"]
    assert findings, report.render_text()
    assert all(f.severity.value == "warning" for f in findings)
    assert any("would eject at interface" in f.message for f in findings)


@pytest.mark.parametrize("config_fn", [torus_config, hyperx_config],
                         ids=["torus", "hyperx"])
def test_shipped_topologies_lint_clean(config_fn):
    """The packaged torus and HyperX configurations produce no graph
    findings at all: fully wired, acyclic, every probe ejects home."""
    report = lint_config_dict(config_fn())
    assert report.findings == [], report.render_text()

"""The shard-purity analyzer (S-rules) and its consumers.

Three layers of coverage:

* the interprocedural engine's verdicts on every *builtin* model (the
  derived classifications must match the old hand-maintained scope
  list: dragonfly/hyperx hop-adaptive routing unsafe with hop_count
  evidence chains, blast conditional on auto-warmup, everything else
  clean);
* one mutation fixture per S-rule (``fixtures/shard_hazards.py``),
  asserted rule-by-rule -- proof each rule actually fires;
* the consumers: ``validate_sharded_scope`` (verdict-driven, no name
  lists), the ``shard`` lint layer in ``sslint``, and SARIF
  fingerprint stability for S-findings.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro import Settings
from repro.configs import credit_accounting_config
from repro.lint import SHARD_LAYER, lint_settings
from repro.lint.findings import Finding, Severity
from repro.lint.sarif import fingerprint
from repro.lint.shard_rules import (
    CONDITIONAL,
    SHARD_SAFE,
    SHARD_UNSAFE,
    analyze_class,
    analyze_registered,
    classify_registered,
)
from repro.partition.runtime import (
    PartitionRuntimeError,
    validate_sharded_scope,
)
from repro.tools.sslint import sslint_main

from tests.conftest import small_torus_config
from tests.lint.fixtures import shard_hazards  # noqa: F401 - registers models


def _write_config(tmp_path, config, name="config.json"):
    path = tmp_path / name
    path.write_text(json.dumps(config))
    return str(path)


# -- builtin classifications -------------------------------------------------

#: What the analyzer must derive for every shipped model -- the same
#: judgments the old hard-coded scope list encoded, now with evidence.
BUILTIN_EXPECTATIONS = {
    ("application", "blast"): CONDITIONAL,
    ("application", "pulse"): SHARD_SAFE,
    ("application", "request_reply"): SHARD_UNSAFE,
    ("routing", "chain"): SHARD_SAFE,
    ("routing", "clos_adaptive"): SHARD_SAFE,
    ("routing", "clos_deterministic"): SHARD_SAFE,
    ("routing", "dragonfly_minimal"): SHARD_UNSAFE,
    ("routing", "dragonfly_ugal"): SHARD_UNSAFE,
    ("routing", "dragonfly_valiant"): SHARD_UNSAFE,
    ("routing", "hyperx_dimension_order"): SHARD_SAFE,
    ("routing", "hyperx_ugal"): SHARD_UNSAFE,
    ("routing", "hyperx_valiant"): SHARD_UNSAFE,
    ("routing", "torus_dimension_order"): SHARD_SAFE,
    ("routing", "torus_minimal_adaptive"): SHARD_SAFE,
    ("router", "input_output_queued"): SHARD_SAFE,
    ("router", "input_queued"): SHARD_SAFE,
    ("router", "output_queued"): SHARD_SAFE,
    ("interface", "standard"): SHARD_SAFE,
}


def test_builtin_classifications_match_expectations():
    table = classify_registered()
    actual = {
        (kind, name): verdict.classification
        for kind, verdicts in table.items()
        for name, verdict in verdicts.items()
    }
    for key, expected in BUILTIN_EXPECTATIONS.items():
        assert actual.get(key) == expected, (
            f"{key}: expected {expected}, got {actual.get(key)}"
        )


def test_hop_adaptive_routing_carries_evidence_chain():
    verdict = analyze_registered("routing", "dragonfly_ugal")
    assert verdict.classification == SHARD_UNSAFE
    (hazard,) = [h for h in verdict.hazards if h.rule_id == "S001"]
    # The read happens two helpers deep; the chain must show the path
    # from the framework entry point to the offending method.
    assert hazard.path == ("route", "_decide", "_hop_vc")
    assert "hop_count" in hazard.detail
    assert "dragonfly.py" in hazard.location
    assert not hazard.conditions  # unconditional: fires for any config


def test_blast_is_conditional_on_auto_warmup():
    verdict = analyze_registered("application", "blast")
    assert verdict.classification == CONDITIONAL
    (hazard,) = verdict.hazards
    assert hazard.rule_id == "S002"
    rendered = hazard.render()
    assert "warmup_mode == 'auto'" in rendered
    assert "injection_rate" in rendered
    # Condition evaluation against concrete config blocks:
    assert not hazard.applicable({"warmup_mode": "fixed",
                                  "injection_rate": 0.2})
    assert hazard.applicable({"warmup_mode": "auto",
                              "injection_rate": 0.2})
    assert not hazard.applicable({"warmup_mode": "auto",
                                  "injection_rate": 0.0})
    # Missing keys fall back to the recorded source defaults.
    assert not hazard.applicable({})


# -- mutation fixtures: every S-rule proven to fire --------------------------


@pytest.mark.parametrize(
    "cls,kind,rule_id",
    [
        (shard_hazards.SneakyHopLocalVcRouting, "routing", "S001"),
        (shard_hazards.DeliveryGatedApplication, "application", "S002"),
        (shard_hazards.NetworkSnoopApplication, "application", "S003"),
        (shard_hazards.ModuleStateApplication, "application", "S004"),
        (shard_hazards.RngOnDeliveryApplication, "application", "S005"),
    ],
)
def test_mutation_fixture_trips_its_rule(cls, kind, rule_id):
    verdict = analyze_class(cls, kind)
    assert verdict.classification == SHARD_UNSAFE
    fired = {h.rule_id for h in verdict.hazards}
    assert fired == {rule_id}, (
        f"{cls.__name__}: expected exactly {rule_id}, got {sorted(fired)}"
    )
    for hazard in verdict.hazards:
        assert "shard_hazards.py" in hazard.location


def test_module_state_fixture_flags_counter_and_mutation():
    verdict = analyze_class(shard_hazards.ModuleStateApplication,
                            "application")
    details = [h.detail for h in verdict.hazards]
    assert any("next(_PACKET_SERIALS)" in d for d in details)
    assert any("_DELIVERY_LOG" in d for d in details)


# -- validate_sharded_scope: verdicts, not name lists ------------------------


def test_scope_rejects_custom_hop_count_routing():
    """The regression the blocklist could never catch.

    ``sneaky_hop_local_vc`` shares no name prefix with dragonfly or
    hyperx; the old ``startswith`` check would have admitted it and the
    sharded run would silently diverge.  The verdict-driven scope must
    reject it with the analyzer's hop_count evidence.
    """
    config = small_torus_config()
    config["network"]["routing"]["algorithm"] = "sneaky_hop_local_vc"
    with pytest.raises(PartitionRuntimeError, match="hop_count") as excinfo:
        validate_sharded_scope(config)
    message = str(excinfo.value)
    assert "S001" in message
    assert "SneakyHopLocalVcRouting.route" in message


def test_scope_admits_hyperx_dimension_order():
    """Scope widening: safe-by-analysis beats unsafe-by-name-prefix.

    hyperx_dimension_order never reads hop_count (it rotates VCs by
    packet.global_id, which shards replay identically), but the old
    blocklist rejected every ``hyperx*`` name.  The analyzer proves it
    clean, so the derived scope admits it.
    """
    config = small_torus_config()
    config["network"]["routing"]["algorithm"] = "hyperx_dimension_order"
    validate_sharded_scope(config)  # must not raise


@pytest.mark.parametrize(
    "app_type,rule_id",
    [
        ("delivery_gated_app", "S002"),
        ("network_snoop_app", "S003"),
        ("module_state_app", "S004"),
        ("rng_on_delivery_app", "S005"),
    ],
)
def test_scope_rejects_unsafe_fixture_applications(app_type, rule_id):
    config = small_torus_config()
    config["workload"]["applications"][0]["type"] = app_type
    with pytest.raises(PartitionRuntimeError, match=rule_id):
        validate_sharded_scope(config)


# -- lint-layer integration --------------------------------------------------


def test_shard_layer_flags_configured_unsafe_routing():
    settings = Settings.from_dict(credit_accounting_config())
    report = lint_settings(settings, layers=[SHARD_LAYER])
    errors = [f for f in report.findings if f.severity == Severity.ERROR]
    assert any(
        f.rule_id == "S001" and "hop_count" in f.message for f in errors
    )


def test_shard_layer_demotes_dormant_hazards_to_info():
    # blast with fixed warmup: the S002 hazard exists but its guard
    # (warmup_mode == 'auto') is provably false for this config.
    settings = Settings.from_dict(small_torus_config())
    report = lint_settings(settings, layers=[SHARD_LAYER])
    assert not report.has_errors()
    dormant = [f for f in report.findings if f.rule_id == "S002"]
    assert dormant and all(
        f.severity == Severity.INFO and "dormant here" in f.message
        for f in dormant
    )


def test_sslint_list_rules_shows_shard_layer(capsys):
    assert sslint_main(["--list-rules", "--layer", "shard"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("S001", "S002", "S003", "S004", "S005"):
        assert rule_id in out
    assert "C001" not in out


def test_sslint_partition_gates_on_shard_verdicts(tmp_path, capsys):
    config = credit_accounting_config()  # hyperx_ugal routing
    path = _write_config(tmp_path, config)
    assert sslint_main([path, "--partition", "4"]) == 1
    out = capsys.readouterr().out
    assert "S001" in out and "hop_count" in out


def test_sslint_shard_layer_over_sources(capsys):
    fixture = str(
        pathlib.Path(__file__).parent / "fixtures" / "shard_hazards.py"
    )
    assert sslint_main([fixture, "--layer", "shard"]) == 1
    out = capsys.readouterr().out
    for rule_id in ("S001", "S002", "S003", "S004", "S005"):
        assert rule_id in out


# -- SARIF fingerprints ------------------------------------------------------


def test_shard_fingerprints_pin_rule_class_and_chain():
    base = Finding(
        "S001", Severity.ERROR,
        "[network.routing.algorithm=dragonfly_ugal] S001 ...",
        config_path="DragonflyUgalRouting:route->_decide->_hop_vc",
        location="src/repro/routing/dragonfly.py:49",
    )
    drifted = Finding(
        "S001", Severity.ERROR,
        "a reworded message from a newer analyzer",
        config_path="DragonflyUgalRouting:route->_decide->_hop_vc",
        location="src/repro/routing/dragonfly.py:63",  # line drift
    )
    other_chain = Finding(
        "S001", Severity.ERROR,
        base.message,
        config_path="DragonflyUgalRouting:route->_hop_vc",
        location=base.location,
    )
    subject = "partition:test"
    assert fingerprint(base, subject) == fingerprint(drifted, subject)
    assert fingerprint(base, subject) != fingerprint(other_chain, subject)
    assert fingerprint(base, subject) != fingerprint(base, "other-subject")

"""Graph-layer rules G001..G006: wiring and channel dependency cycles."""

from __future__ import annotations

import copy

import pytest

import repro.net.message as message_mod
import repro.net.packet as packet_mod
from repro.config.settings import Settings
from repro.configs import blast_pulse_config
from repro.lint import lint_config_dict
from repro.lint.graph import GraphAnalysis, _find_cycle
from repro.lint.rules import GRAPH_LAYER, LintContext, run_rules

from .fixtures import naive_routing  # noqa: F401 - registers the algorithm


def _graph_report(config):
    ctx = LintContext(settings=Settings.from_dict(config))
    return run_rules(ctx, [GRAPH_LAYER])


@pytest.fixture()
def torus_config():
    return copy.deepcopy(blast_pulse_config())


def test_construction_failure_g001(torus_config):
    # Passes no config-layer gate here: odd VCs break the dateline
    # scheme inside the RoutingAlgorithm constructor.
    torus_config["network"]["num_vcs"] = 3
    report = _graph_report(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "G001"]
    assert finding.severity.value == "error"
    assert "RoutingError" in finding.message


def test_unconnected_ports_g002_are_info():
    config = {
        "network": {
            "topology": "parking_lot",
            "length": 4,
            "concentration": 1,
            "num_vcs": 1,
            "router": {"architecture": "input_queued"},
            "routing": {"algorithm": "chain"},
        },
        "workload": {
            "applications": [
                {
                    "type": "blast",
                    "injection_rate": 0.1,
                    "traffic": {"type": "uniform_random"},
                    "message_size": {"type": "constant", "size": 1},
                }
            ]
        },
    }
    report = lint_config_dict(config)
    findings = [f for f in report.findings if f.rule_id == "G002"]
    # The two chain-end routers each have one unused ring port.
    assert len(findings) == 2
    assert all(f.severity.value == "info" for f in findings)
    assert not report.has_errors()


def test_deadlock_prone_routing_g004(torus_config):
    torus_config["network"]["routing"]["algorithm"] = "naive_torus_minimal"
    report = lint_config_dict(torus_config)
    (finding,) = [f for f in report.findings if f.rule_id == "G004"]
    assert finding.severity.value == "error"
    assert "deadlock" in finding.message
    assert "vc" in finding.message  # names the cycle's channels


def test_adaptive_cycle_g005_is_info(torus_config):
    torus_config["network"]["num_vcs"] = 4
    torus_config["network"]["routing"]["algorithm"] = "torus_minimal_adaptive"
    report = lint_config_dict(torus_config)
    assert [f.rule_id for f in report.findings] == ["G005"]
    assert report.findings[0].severity.value == "info"


def test_dateline_dor_cdg_is_acyclic(torus_config):
    analysis = GraphAnalysis(Settings.from_dict(torus_config))
    assert analysis.constructed
    assert analysis.pairs_traced > 0
    assert analysis.full_cycle is None
    assert analysis.escape_cycle is None


def test_trace_restores_global_id_counters(torus_config):
    before_packet = next(packet_mod._global_packet_ids)
    before_message = next(message_mod._global_message_ids)
    GraphAnalysis(Settings.from_dict(torus_config))
    # The trace created hundreds of probe packets; the counters the
    # simulator's VC rotation depends on must be exactly as before.
    assert next(packet_mod._global_packet_ids) == before_packet + 1
    assert next(message_mod._global_message_ids) == before_message + 1


def test_find_cycle_detects_sccs_and_self_loops():
    a, b, c = ("a", 0), ("b", 0), ("c", 0)
    assert _find_cycle({a: {b}, b: {c}}) is None
    cycle = _find_cycle({a: {b}, b: {c}, c: {a}})
    assert cycle is not None and set(cycle) == {a, b, c}
    assert _find_cycle({a: {a}}) == [a]


def test_pair_sampling_is_bounded(torus_config):
    analysis = GraphAnalysis(Settings.from_dict(torus_config), max_pairs=10)
    assert analysis.pairs_traced == 10

"""The sslint CLI and its integration points (supersim, sssweep)."""

from __future__ import annotations

import copy
import json
import pathlib
import sys

import pytest

from repro.__main__ import main as supersim_main
from repro.configs import blast_pulse_config
from repro.tools.sslint import sslint_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _write_config(tmp_path, config, name="config.json"):
    path = tmp_path / name
    path.write_text(json.dumps(config))
    return str(path)


def test_clean_config_exits_zero(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert sslint_main([path]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_error_finding_exits_one(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["router"]["crossbar_scheduler"] = {
        "flow_control": "packet_buffer"
    }
    config["network"]["router"]["input_queue_depth"] = 8
    config["network"]["interface"]["max_packet_size"] = 16
    path = _write_config(tmp_path, config)
    assert sslint_main([path]) == 1
    assert "C008" in capsys.readouterr().out


def test_json_format_is_machine_readable(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["chanel_latency"] = 4  # C001 typo, warning only
    path = _write_config(tmp_path, config)
    assert sslint_main([path, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 0
    (report,) = payload["reports"]
    assert report["counts"]["warning"] == 1
    (finding,) = report["findings"]
    assert finding["rule_id"] == "C001"
    assert "channel_latency" in finding["suggestion"]


def test_overrides_apply_to_config_targets(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert sslint_main([path, "network.num_vcs=uint=3"]) == 1
    assert "C007" in capsys.readouterr().out


def test_import_registers_user_models(tmp_path, capsys, monkeypatch):
    monkeypatch.syspath_prepend(str(FIXTURES))
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["routing"]["algorithm"] = "naive_torus_minimal"
    path = _write_config(tmp_path, config)
    assert sslint_main([path, "--import", "naive_routing"]) == 1
    assert "G004" in capsys.readouterr().out


def test_builtin_configs_lint_clean(capsys):
    assert sslint_main(["--builtin", "all", "--max-pairs", "64"]) == 0
    assert "builtin:" in capsys.readouterr().out


def test_list_rules_covers_all_layers(capsys):
    assert sslint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("C001", "C008", "G004", "D001", "D005"):
        assert rule_id in out


def test_py_targets_use_determinism_layer(tmp_path, capsys):
    source = tmp_path / "model.py"
    source.write_text("import random\nrandom.random()\n")
    assert sslint_main([str(source)]) == 0  # warnings only
    assert "D001" in capsys.readouterr().out


def test_nothing_to_lint_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        sslint_main([])
    assert excinfo.value.code == 2


def test_supersim_lint_only(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert supersim_main([path, "--lint-only"]) == 0
    assert supersim_main([path, "network.num_vcs=uint=3", "--lint-only"]) == 1
    err = capsys.readouterr().err
    assert "C007" in err


def test_supersim_lint_blocks_simulation(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["num_vcs"] = 3
    path = _write_config(tmp_path, config)
    assert supersim_main([path, "--lint", "--quiet"]) == 1
    assert "not simulating" in capsys.readouterr().err


def test_sssweep_lint_gate_blocks_fanout(tmp_path, capsys):
    from repro.tools.cli import sssweep_main

    path = _write_config(tmp_path, blast_pulse_config())
    rc = sssweep_main(
        [path, "--var", "V=network.num_vcs=uint=3,5", "--workers", "1",
         "--quiet"]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "C007" in err and "not launching" in err

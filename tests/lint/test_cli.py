"""The sslint CLI and its integration points (supersim, sssweep)."""

from __future__ import annotations

import copy
import json
import pathlib
import sys

import pytest

from repro.__main__ import main as supersim_main
from repro.configs import blast_pulse_config
from repro.tools.sslint import sslint_main

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def _write_config(tmp_path, config, name="config.json"):
    path = tmp_path / name
    path.write_text(json.dumps(config))
    return str(path)


def test_clean_config_exits_zero(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert sslint_main([path]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_error_finding_exits_one(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["router"]["crossbar_scheduler"] = {
        "flow_control": "packet_buffer"
    }
    config["network"]["router"]["input_queue_depth"] = 8
    config["network"]["interface"]["max_packet_size"] = 16
    path = _write_config(tmp_path, config)
    assert sslint_main([path]) == 1
    assert "C008" in capsys.readouterr().out


def test_json_format_is_machine_readable(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["chanel_latency"] = 4  # C001 typo, warning only
    path = _write_config(tmp_path, config)
    assert sslint_main([path, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 0
    (report,) = payload["reports"]
    assert report["counts"]["warning"] == 1
    (finding,) = report["findings"]
    assert finding["rule_id"] == "C001"
    assert "channel_latency" in finding["suggestion"]


def test_overrides_apply_to_config_targets(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert sslint_main([path, "network.num_vcs=uint=3"]) == 1
    assert "C007" in capsys.readouterr().out


def test_import_registers_user_models(tmp_path, capsys, monkeypatch):
    monkeypatch.syspath_prepend(str(FIXTURES))
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["routing"]["algorithm"] = "naive_torus_minimal"
    path = _write_config(tmp_path, config)
    assert sslint_main([path, "--import", "naive_routing"]) == 1
    assert "G004" in capsys.readouterr().out


def test_builtin_configs_lint_clean(capsys):
    assert sslint_main(["--builtin", "all", "--max-pairs", "64"]) == 0
    assert "builtin:" in capsys.readouterr().out


def test_list_rules_covers_all_layers(capsys):
    assert sslint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("C001", "C008", "G004", "D001", "D005"):
        assert rule_id in out


def test_py_targets_use_determinism_layer(tmp_path, capsys):
    source = tmp_path / "model.py"
    source.write_text("import random\nrandom.random()\n")
    assert sslint_main([str(source)]) == 0  # warnings only
    assert "D001" in capsys.readouterr().out


def test_nothing_to_lint_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        sslint_main([])
    assert excinfo.value.code == 2


def test_supersim_lint_only(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert supersim_main([path, "--lint-only"]) == 0
    assert supersim_main([path, "network.num_vcs=uint=3", "--lint-only"]) == 1
    err = capsys.readouterr().err
    assert "C007" in err


def test_supersim_lint_blocks_simulation(tmp_path, capsys):
    config = copy.deepcopy(blast_pulse_config())
    config["network"]["num_vcs"] = 3
    path = _write_config(tmp_path, config)
    assert supersim_main([path, "--lint", "--quiet"]) == 1
    assert "not simulating" in capsys.readouterr().err


def test_sssweep_lint_gate_blocks_fanout(tmp_path, capsys):
    from repro.tools.cli import sssweep_main

    path = _write_config(tmp_path, blast_pulse_config())
    rc = sssweep_main(
        [path, "--var", "V=network.num_vcs=uint=3,5", "--workers", "1",
         "--quiet"]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "C007" in err and "not launching" in err


# -- partition planning / verification (docs/PARTITIONING.md) ----------------


def test_sslint_partition_plans_and_summarizes(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert sslint_main([path, "--partition", "4"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
    assert "partition: k=4" in out
    assert "lookahead" in out


def test_sslint_partition_all_builtins(capsys):
    # credit_accounting routes with hyperx_ugal, which the shard-purity
    # analyzer (rightly) flags S001 -- so "all builtins" now exits 1,
    # with the other three configs still planning cleanly.
    assert sslint_main(
        ["--builtin", "all", "--partition", "4", "--max-pairs", "64"]
    ) == 1
    out = capsys.readouterr().out
    assert out.count("partition: k=4") == 4
    assert "S001" in out and "hop_count" in out


def test_sslint_manifest_out_is_deterministic(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    assert sslint_main(
        [path, "--partition", "4", "--manifest-out", str(first)]
    ) == 0
    assert sslint_main(
        [path, "--partition", "4", "--manifest-out", str(second)]
    ) == 0
    capsys.readouterr()
    assert first.read_bytes() == second.read_bytes()


def test_sslint_manifest_out_directory_for_many(tmp_path, capsys):
    out_dir = tmp_path / "plans"
    # Exit 1 for credit_accounting's S001 (see above); S-findings are
    # verdicts about model code, not the shard assignment, so all four
    # manifests must still be written.
    assert sslint_main(
        ["--builtin", "all", "--partition", "2", "--max-pairs", "64",
         "--manifest-out", str(out_dir)]
    ) == 1
    capsys.readouterr()
    written = sorted(p.name for p in out_dir.iterdir())
    assert len(written) == 4
    assert all(name.endswith(".partition.json") for name in written)


def test_sslint_manifest_roundtrip_verifies_clean(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    manifest = tmp_path / "plan.json"
    assert sslint_main(
        [path, "--partition", "2", "--manifest-out", str(manifest)]
    ) == 0
    capsys.readouterr()
    assert sslint_main([path, "--manifest", str(manifest)]) == 0


def test_sslint_manifest_catches_tampering(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    manifest_path = tmp_path / "plan.json"
    assert sslint_main(
        [path, "--partition", "2", "--manifest-out", str(manifest_path)]
    ) == 0
    capsys.readouterr()
    manifest = json.loads(manifest_path.read_text())
    manifest["lookahead"]["global"] = 10_000
    manifest_path.write_text(json.dumps(manifest))
    assert sslint_main([path, "--manifest", str(manifest_path)]) == 1
    assert "P003" in capsys.readouterr().out


def test_sslint_partition_and_manifest_are_exclusive(tmp_path):
    path = _write_config(tmp_path, blast_pulse_config())
    with pytest.raises(SystemExit) as excinfo:
        sslint_main([path, "--partition", "2", "--manifest", "x.json"])
    assert excinfo.value.code == 2


def test_sslint_list_rules_layer_filter(capsys):
    assert sslint_main(["--list-rules", "--layer", "partition"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("P001", "P008"):
        assert rule_id in out
    assert "C001" not in out and "G001" not in out


def test_sslint_layer_restricts_source_lint(tmp_path, capsys):
    source = tmp_path / "model.py"
    source.write_text(
        "import random\n"
        "class M:\n"
        "    def pick(self):\n"
        "        return random.random() + self.peer.bias\n"
    )
    assert sslint_main([str(source), "--layer", "partition"]) == 0
    out = capsys.readouterr().out
    assert "P006" in out and "D001" not in out


def test_supersim_partition_plan_emits_manifest(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert supersim_main([path, "--partition-plan", "4"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["k"] == 4
    assert manifest["lookahead"]["global"] >= 1
    assert len(manifest["shards"]) == 4


def test_supersim_partition_plan_fails_on_bad_k(tmp_path, capsys):
    path = _write_config(tmp_path, blast_pulse_config())
    assert supersim_main([path, "--partition-plan", "0"]) == 1
    err = capsys.readouterr().err
    assert "P005" in err and "no manifest emitted" in err


def test_sssweep_partition_gate_passes_and_reports(tmp_path, capsys):
    from repro.tools.cli import sssweep_main

    path = _write_config(tmp_path, blast_pulse_config())
    rc = sssweep_main(
        [path, "--var", "S=simulator.seed=uint=1,2", "--workers", "1",
         "--max-time", "200", "--partition", "4"]
    )
    assert rc == 0
    assert "partition gate: k=4" in capsys.readouterr().err


def test_sssweep_partition_gate_blocks_fanout(tmp_path, capsys):
    from repro.tools.cli import sssweep_main

    path = _write_config(tmp_path, blast_pulse_config())
    rc = sssweep_main(
        [path, "--var", "S=simulator.seed=uint=1,2", "--workers", "1",
         "--partition", "0", "--quiet"]
    )
    assert rc == 2
    err = capsys.readouterr().err
    assert "P005" in err and "not launching" in err

"""Findings, severities, and report rendering."""

from __future__ import annotations

import json

from repro.lint import Finding, LintReport, Severity


def test_severity_ranks_order_worst_first():
    assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank


def test_finding_render_and_dict():
    finding = Finding(
        "C001",
        Severity.WARNING,
        "unknown setting",
        config_path="network.typo",
        suggestion="did you mean 'type'?",
    )
    text = finding.render()
    assert "warning[C001]" in text
    assert "network.typo" in text
    assert "did you mean" in text
    data = finding.to_dict()
    assert data["rule_id"] == "C001"
    assert data["severity"] == "warning"
    assert data["config_path"] == "network.typo"


def test_report_sorting_counts_and_json():
    report = LintReport(subject="unit")
    report.add(Finding("G005", Severity.INFO, "adaptive cycle"))
    report.add(Finding("C007", Severity.ERROR, "vc mismatch"))
    report.add(Finding("D001", Severity.WARNING, "unseeded random"))
    report.add(Finding("C004", Severity.ERROR, "missing block"))

    ordered = [f.rule_id for f in report.sorted_findings()]
    assert ordered == ["C004", "C007", "D001", "G005"]
    assert report.counts() == {"error": 2, "warning": 1, "info": 1}
    assert report.has_errors()
    assert len(report.errors) == 2 and len(report.warnings) == 1

    payload = json.loads(report.to_json())
    assert payload["subject"] == "unit"
    assert payload["counts"]["error"] == 2
    assert [f["rule_id"] for f in payload["findings"]] == ordered

    text = report.render_text()
    assert text.splitlines()[0] == "== unit =="
    assert text.strip().endswith("2 error(s), 1 warning(s), 1 info")


def test_report_merge():
    a = LintReport(subject="a")
    a.add(Finding("C001", Severity.WARNING, "x"))
    b = LintReport(subject="b")
    b.add(Finding("C002", Severity.ERROR, "y"))
    a.merge(b)
    assert [f.rule_id for f in a.findings] == ["C001", "C002"]
    assert a.has_errors()

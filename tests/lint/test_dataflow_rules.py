"""Dataflow-layer rules E001..E006: each catches its seeded mutation."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_sources

#: one file per rule: the minimal model fragment that must trip it.
MUTATIONS = {
    "E001": """
        class RetainingModel:
            def arm(self):
                self.pending = self.simulator.call_at(10, self.fire)
        """,
    "E002": """
        class CollectingModel:
            def arm_all(self, ticks):
                self.handles = {}
                for tick in ticks:
                    self.handles[tick] = self.schedule_at(self.fire, tick)
                self.extra = []
                self.extra.append(self.schedule(self.fire, 5))
        """,
    "E003": """
        class SameTickModel:
            def kick(self):
                self.simulator.call_at(self.simulator.tick, self.fire)
                self.schedule_at(self.fire, self.simulator.tick, epsilon=0)
        """,
    "E004": """
        class EpsilonAbuseModel:
            def kick(self):
                self.schedule(self.fire, 0, epsilon=1 << 20)
                self.simulator.call_at(10, self.fire, None, epsilon=-1)
        """,
    "E005": """
        class CreditPokingRouter:
            def refund(self, port, vc):
                tracker = self.output_credit_tracker(port)
                tracker._credits[vc] += 1
                tracker._capacity = [99, 99]
        """,
    "E006": """
        class ResurrectingModel:
            def retry(self, event):
                event.fired = False
                event.cancelled = False
                event.generation += 1
        """,
}

#: correct counterparts: same shape, contract respected.
CLEAN_SOURCE = """
    from repro.net.phases import EPS_STEP

    class WellBehavedModel:
        def arm(self):
            # Handle used immediately, not retained.
            self.schedule(self.fire, 5, epsilon=EPS_STEP)
            self.schedule_at(self.fire, self.simulator.tick + 1)
            # delay-0 schedule() auto-bumps epsilon: allowed.
            self.schedule(self.fire, 0)

        def fire(self, event):
            # Clearing an engine-owned field on *self* is the engine's
            # own business (this is how Simulator itself is written).
            self.fired = True

        def refund(self, port, vc):
            self.output_credit_tracker(port).give(vc)

        def stop(self, event):
            event.cancel()
    """


def _write(tmp_path, name, body):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(body))
    return str(path)


@pytest.mark.mutation
@pytest.mark.parametrize("rule_id", sorted(MUTATIONS))
def test_each_rule_catches_its_mutation(tmp_path, rule_id):
    path = _write(tmp_path, rule_id.lower(), MUTATIONS[rule_id])
    report = lint_sources([path])
    hits = [f for f in report.findings if f.rule_id == rule_id]
    assert hits, f"{rule_id} did not fire:\n{report.render_text()}"
    for finding in hits:
        assert finding.location.startswith(path)


def test_mutation_files_trip_only_their_rule(tmp_path):
    for rule_id, body in MUTATIONS.items():
        path = _write(tmp_path, f"only_{rule_id.lower()}", body)
        report = lint_sources([path])
        ids = {f.rule_id for f in report.findings if f.rule_id.startswith("E")}
        assert ids == {rule_id}, (
            f"{rule_id} fixture tripped {sorted(ids)}:\n{report.render_text()}"
        )


def test_severities_match_the_contract(tmp_path):
    paths = [
        _write(tmp_path, rule_id.lower(), body)
        for rule_id, body in MUTATIONS.items()
    ]
    report = lint_sources(paths)
    by_rule = {}
    for finding in report.findings:
        by_rule.setdefault(finding.rule_id, set()).add(finding.severity.value)
    # Handle-retention and same-tick patterns have legitimate uses:
    # warnings.  API bypass and range overflow always break: errors.
    assert by_rule["E001"] == {"warning"}
    assert by_rule["E002"] == {"warning"}
    assert by_rule["E003"] == {"warning"}
    assert by_rule["E004"] == {"error"}
    assert by_rule["E005"] == {"error"}
    assert by_rule["E006"] == {"error"}


def test_clean_model_has_no_dataflow_findings(tmp_path):
    path = _write(tmp_path, "clean", CLEAN_SOURCE)
    report = lint_sources([path])
    e_findings = [f for f in report.findings if f.rule_id.startswith("E")]
    assert not e_findings, report.render_text()


def test_parse_error_reported_once_not_per_rule(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    report = lint_sources([str(path)])
    e_findings = [f for f in report.findings if f.rule_id.startswith("E")]
    assert len(e_findings) == 1
    assert e_findings[0].rule_id == "E001"
    assert "could not parse" in e_findings[0].message


def test_rule_catalog_includes_dataflow_layer():
    from repro.lint import DATAFLOW_LAYER, all_rule_ids, rule_catalog

    ids = all_rule_ids(DATAFLOW_LAYER)
    assert ids == ["E001", "E002", "E003", "E004", "E005", "E006"]
    catalog = rule_catalog()
    for rule_id in ids:
        assert catalog[rule_id]["layer"] == DATAFLOW_LAYER
        assert catalog[rule_id]["description"]


def test_shipped_sanitize_and_router_sources_are_dataflow_clean():
    """The packaged model code must obey its own contracts (errors only;
    E001-style warnings are legitimate for retain-to-cancel patterns)."""
    import pathlib

    root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
    sources = [
        str(path)
        for sub in ("router", "net", "workload", "sanitize")
        for path in sorted((root / sub).glob("*.py"))
    ]
    report = lint_sources(sources)
    e_errors = [
        f
        for f in report.findings
        if f.rule_id.startswith("E") and f.severity.value == "error"
    ]
    assert not e_errors, "\n".join(f.render() for f in e_errors)

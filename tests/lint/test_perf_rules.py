"""The hot-path perf analyzer (H-rules) and its consumers.

Four layers of coverage:

* the heat-propagation pass: per-event entry points seed the weights,
  helpers inherit them interprocedurally, construction-time code never
  enters the audit;
* one mutation fixture per H-rule (``fixtures/perf_hazards.py``),
  asserted rule-by-rule -- proof each rule actually fires, with the
  evidence chain naming the entry point;
* profile correlation: a real cProfile dump re-ranks findings and
  demotes statically-hot-but-measured-cold ones to INFO;
* the consumers: the ``perf`` layer in ``sslint`` (``--layer perf``,
  ``--profile``, ``--list-rules``) and SARIF fingerprint stability for
  H-findings.
"""

from __future__ import annotations

import cProfile
import pathlib

import pytest

from repro.lint import PERF_LAYER, lint_sources
from repro.lint.callgraph import ClassGraph, propagate_heat
from repro.lint.findings import Finding, Severity
from repro.lint.perf_rules import (
    HEAT_ENTRIES,
    HOT_THRESHOLD,
    analyze_class_perf,
    load_profile_times,
)
from repro.lint.sarif import fingerprint
from repro.tools.sslint import sslint_main

from tests.lint.fixtures import perf_hazards as fx

FIXTURE_PATH = str(
    pathlib.Path(__file__).parent / "fixtures" / "perf_hazards.py"
)


def _own_hazards(cls, kind="routing"):
    """Hazards of ``cls`` defined by the fixture itself (not inherited)."""
    return [
        hazard
        for hazard in analyze_class_perf(cls, kind)
        if hazard.owner == cls.__name__
    ]


# -- heat propagation --------------------------------------------------------


def test_entry_points_seed_the_heat_map():
    from repro.router.input_queued import InputQueuedRouter

    heat = propagate_heat(
        ClassGraph(InputQueuedRouter), HEAT_ENTRIES["router"]
    )
    assert heat["_step"].weight == 4.0
    assert heat["_step"].path == ("_step",)
    assert heat["receive_flit"].weight == 1.0


def test_helpers_inherit_heat_interprocedurally():
    from repro.router.input_queued import InputQueuedRouter

    heat = propagate_heat(
        ClassGraph(InputQueuedRouter), HEAT_ENTRIES["router"]
    )
    # _run_crossbar is reached from the hottest entry; the evidence
    # path must start at that entry.
    crossbar = heat["_run_crossbar"]
    assert crossbar.weight == 4.0
    assert crossbar.path[0] == "_step"
    assert crossbar.path[-1] == "_run_crossbar"


def test_construction_time_code_stays_cold():
    from repro.router.input_queued import InputQueuedRouter

    heat = propagate_heat(
        ClassGraph(InputQueuedRouter), HEAT_ENTRIES["router"]
    )
    assert "__init__" not in heat
    assert "_finalize_arch" not in heat


def test_cold_fixture_is_never_flagged():
    assert _own_hazards(fx.ColdSetupRouting) == []


# -- one fixture per rule ----------------------------------------------------

RULE_FIXTURES = [
    (fx.AllocTrailRouting, "H001", "route",
     "alloc:list comprehension:stored"),
    (fx.ClosureSortRouting, "H002", "route", "lambda"),
    (fx.ChainHappyRouting, "H003", "route", "chain:self.router.num_vcs"),
    (fx.ChattyTraceRouting, "H004", "_note_hop", "fstring"),
    (fx.NotefulRouting, "H005", "route", "new:HopNote"),
    (fx.FlakyProbeRouting, "H006", "route", "try-in-loop"),
    (fx.TypeSniffRouting, "H007", "route", "isinstance:dict"),
    (fx.TableThrashRouting, "H008", "route",
     "expr:self.bias_table[input_vc]"),
]


@pytest.mark.parametrize(
    "cls, rule_id, method, token",
    RULE_FIXTURES,
    ids=[rule_id for _cls, rule_id, _m, _t in RULE_FIXTURES],
)
def test_rule_fires_on_its_fixture(cls, rule_id, method, token):
    hazards = _own_hazards(cls)
    matching = [h for h in hazards if h.rule_id == rule_id]
    assert matching, f"{rule_id} did not fire on {cls.__name__}"
    (hazard,) = [h for h in matching if h.token == token]
    assert hazard.method == method
    assert hazard.heat >= HOT_THRESHOLD
    # Evidence chain: starts at a routing entry point, ends at the
    # flagged method.
    assert hazard.path[0] in HEAT_ENTRIES["routing"]
    assert hazard.path[-1] == method


def test_interprocedural_evidence_chain():
    (hazard,) = [
        h for h in _own_hazards(fx.ChattyTraceRouting)
        if h.rule_id == "H004"
    ]
    assert hazard.path == ("route", "_note_hop")
    assert hazard.chain == "ChattyTraceRouting.route -> _note_hop"


def test_global_declaration_flagged_outside_loops():
    tokens = {
        h.token for h in _own_hazards(fx.FlakyProbeRouting)
        if h.rule_id == "H006"
    }
    assert tokens == {"try-in-loop", "global"}


def test_error_path_allocations_are_exempt():
    # Stock torus routing raises RoutingError with f-strings and builds
    # candidate lists for raise paths; none of that may surface as
    # H005 (exception constructors) on the fixture subclasses.
    from repro.routing.torus import TorusDimensionOrderRouting

    hazards = analyze_class_perf(TorusDimensionOrderRouting, "routing")
    assert not [
        h for h in hazards
        if h.rule_id == "H005" and "Error" in h.token
    ]


# -- lint_sources integration ------------------------------------------------


def test_lint_sources_perf_layer_finds_fixture_hazards():
    report = lint_sources([FIXTURE_PATH], layers=(PERF_LAYER,))
    findings = report.findings
    assert findings
    rule_ids = {f.rule_id for f in findings}
    assert {"H001", "H002", "H003", "H004",
            "H005", "H006", "H007", "H008"} <= rule_ids
    # Perf findings advise; they never gate on severity alone.
    assert all(
        f.severity in (Severity.WARNING, Severity.INFO) for f in findings
    )
    # Every message carries an evidence chain and a heat annotation.
    sample = [f for f in findings if f.rule_id == "H004"][0]
    assert "route -> _note_hop" in sample.message
    assert "heat" in sample.message
    assert "rank" in sample.message


# -- profile correlation -----------------------------------------------------


def _fixture_profile(tmp_path) -> str:
    """A real cProfile dump in which only route() is measurably hot.

    The profiled function is compiled with the fixture file's own
    filename, so ``load_profile_times``'s (basename, funcname) keys
    match the analyzer's hazards exactly as a real run's would.
    """
    source = (
        "def route(reps):\n"
        "    total = 0\n"
        "    for i in range(reps):\n"
        "        total += i\n"
        "    return total\n"
    )
    namespace: dict = {}
    exec(compile(source, FIXTURE_PATH, "exec"), namespace)
    profile = cProfile.Profile()
    profile.enable()
    namespace["route"](200_000)
    profile.disable()
    path = tmp_path / "fixture.pstats"
    profile.dump_stats(str(path))
    return str(path)


def test_load_profile_times_keys_by_basename(tmp_path):
    times, total = load_profile_times(_fixture_profile(tmp_path))
    assert total > 0.0
    assert ("perf_hazards.py", "route") in times


def test_profile_correlation_demotes_measured_cold_findings(tmp_path):
    pstats_path = _fixture_profile(tmp_path)
    report = lint_sources(
        [FIXTURE_PATH], layers=(PERF_LAYER,), profile_path=pstats_path
    )
    findings = report.findings
    hot = [
        f for f in findings
        if f.config_path.split(":")[1].split("->")[-1] == "route"
    ]
    cold = [
        f for f in findings
        if f.config_path.split(":")[1].split("->")[-1] != "route"
    ]
    assert hot and cold
    # route() dominates the profile: its findings keep WARNING and
    # carry the measured share.
    assert all(f.severity == Severity.WARNING for f in hot)
    assert all("measured" in f.message for f in hot)
    # _note_hop (and every other non-route method) never appears in
    # the profile: statically hot, measured cold, demoted to INFO.
    assert all(f.severity == Severity.INFO for f in cold)
    assert all("measured cold here" in f.message for f in cold)


def test_without_profile_nothing_is_demoted():
    report = lint_sources([FIXTURE_PATH], layers=(PERF_LAYER,))
    findings = report.findings
    assert findings
    assert all(f.severity == Severity.WARNING for f in findings)
    assert not any("measured" in f.message for f in findings)


# -- CLI ---------------------------------------------------------------------


def test_sslint_perf_layer_on_sources(capsys):
    assert sslint_main([FIXTURE_PATH, "--layer", "perf"]) == 0
    out = capsys.readouterr().out
    assert "H001" in out
    assert "heat" in out


def test_sslint_profile_flag(tmp_path, capsys):
    pstats_path = _fixture_profile(tmp_path)
    assert sslint_main(
        [FIXTURE_PATH, "--layer", "perf", "--profile", pstats_path]
    ) == 0
    out = capsys.readouterr().out
    assert "measured cold here" in out


def test_sslint_profile_flag_requires_existing_file(tmp_path, capsys):
    with pytest.raises(SystemExit):
        sslint_main(
            [FIXTURE_PATH, "--layer", "perf",
             "--profile", str(tmp_path / "missing.pstats")]
        )


def test_list_rules_perf_layer(capsys):
    assert sslint_main(["--list-rules", "--layer", "perf"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("H001", "H002", "H003", "H004",
                    "H005", "H006", "H007", "H008"):
        assert rule_id in out
    assert "C001" not in out


# -- SARIF fingerprints ------------------------------------------------------


def test_perf_fingerprints_ignore_message_and_line_drift():
    base = Finding(
        "H001", Severity.WARNING,
        "[registered:routing=x] H001 X.route: allocates [heat 0.5]",
        config_path="AllocTrailRouting:route:alloc:list:stored",
        location="tests/lint/fixtures/perf_hazards.py:42",
    )
    drifted = Finding(
        "H001", Severity.INFO,
        "different message entirely (rank moved, heat re-scaled)",
        config_path="AllocTrailRouting:route:alloc:list:stored",
        location="tests/lint/fixtures/perf_hazards.py:99",
    )
    other = Finding(
        "H001", Severity.WARNING,
        base.message,
        config_path="AllocTrailRouting:route:alloc:dict:stored",
        location=base.location,
    )
    assert fingerprint(base) == fingerprint(drifted)
    assert fingerprint(base) != fingerprint(other)

"""The RequestReply application: transactions round-trip correctly."""

import pytest

from repro.tools.ssparse import parse_records
from tests.conftest import run_config


def request_reply_config(rate=0.1, response_size=None):
    app = {
        "type": "request_reply",
        "injection_rate": rate,
        "warmup_duration": 300,
        "generate_duration": 1500,
        "traffic": {"type": "uniform_random"},
        "message_size": {"type": "constant", "size": 2},
    }
    if response_size is not None:
        app["response_size"] = response_size
    return {
        "simulator": {"seed": 31},
        "network": {
            "topology": "torus",
            "dimension_widths": [4, 4],
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 2,
            "router": {"architecture": "input_queued",
                       "input_queue_depth": 16, "core_latency": 2},
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": {"applications": [app]},
    }


@pytest.fixture(scope="module")
def run():
    return run_config(request_reply_config())


def test_drains_and_closes_all_sampled_transactions(run):
    simulation, results = run
    assert results.drained
    app = results.workload.applications[0]
    assert app.sampled_transactions_opened > 50
    assert app.sampled_transactions_closed == app.sampled_transactions_opened


def test_every_request_gets_exactly_one_response(run):
    simulation, results = run
    records = results.records(sampled_only=False)
    by_txn = {}
    for record in records:
        by_txn.setdefault(record.transaction_id, []).append(record)
    complete = [msgs for msgs in by_txn.values() if len(msgs) == 2]
    # Most transactions complete (a few may be cut at the kill edge).
    assert len(complete) > 0.9 * len(by_txn)
    for pair in complete:
        first, second = sorted(pair, key=lambda r: r.created_tick)
        # The response returns to the request's source.
        assert second.source == first.destination
        assert second.destination == first.source


def test_transaction_latency_exceeds_both_message_latencies(run):
    simulation, results = run
    app = results.workload.applications[0]
    latencies = app.sampled_transaction_latencies()
    assert latencies
    mean_txn = sum(latencies) / len(latencies)
    mean_msg = results.latency().mean()
    # Round trip >= ~2x the one-way message latency.
    assert mean_txn > 1.5 * mean_msg


def test_response_size_setting():
    _sim, results = run_config(request_reply_config(response_size=6))
    responses = [
        r for r in results.records(sampled_only=False) if r.num_flits == 6
    ]
    assert responses


def test_ssparse_transaction_aggregation(run):
    simulation, results = run
    parsed = parse_records(results.records(sampled_only=False))
    txn_latency = parsed.transaction_latencies()
    assert parsed.transaction_count() < len(parsed.records)
    assert txn_latency.mean() > parsed.latency("message").mean()
    summary = parsed.summary()
    assert summary["transactions"] == parsed.transaction_count()
    assert summary["transaction_latency"] is not None

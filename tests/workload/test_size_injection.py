"""Message size distributions and injection processes."""

import numpy as np
import pytest

from repro import Settings
from repro.workload.injection import (
    BernoulliInjection,
    PeriodicInjection,
    create_injection_process,
)
from repro.workload.size import (
    ConstantSize,
    ProbabilitySize,
    UniformSize,
    create_size_distribution,
)


def settings(**kwargs):
    return Settings.from_dict(kwargs)


class TestConstantSize:
    def test_sample_and_mean(self):
        dist = ConstantSize(settings(size=7), np.random.default_rng(0))
        assert dist.sample() == 7
        assert dist.mean() == 7.0

    def test_default_is_one_flit(self):
        dist = create_size_distribution(settings(), np.random.default_rng(0))
        assert dist.sample() == 1

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            ConstantSize(settings(size=0), np.random.default_rng(0))


class TestUniformSize:
    def test_range(self):
        dist = UniformSize(settings(min_size=2, max_size=5),
                           np.random.default_rng(0))
        samples = {dist.sample() for _ in range(300)}
        assert samples == {2, 3, 4, 5}
        assert dist.mean() == 3.5

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            UniformSize(settings(min_size=5, max_size=2),
                        np.random.default_rng(0))


class TestProbabilitySize:
    def test_bimodal_mix(self):
        dist = ProbabilitySize(
            settings(sizes=[1, 16], weights=[9, 1]), np.random.default_rng(0)
        )
        samples = [dist.sample() for _ in range(2000)]
        small = sum(1 for s in samples if s == 1)
        assert 0.85 < small / len(samples) < 0.95
        assert dist.mean() == pytest.approx(0.9 * 1 + 0.1 * 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilitySize(settings(sizes=[1], weights=[1, 2]),
                            np.random.default_rng(0))
        with pytest.raises(ValueError):
            ProbabilitySize(settings(sizes=[0], weights=[1]),
                            np.random.default_rng(0))
        with pytest.raises(ValueError):
            ProbabilitySize(settings(sizes=[1], weights=[0]),
                            np.random.default_rng(0))


class TestBernoulliInjection:
    def test_mean_rate_matches(self):
        """Long-run injected flit rate approximates the target."""
        process = BernoulliInjection(settings(), 0.25, 4.0,
                                     np.random.default_rng(0))
        # p = 0.25/4 = 1/16 messages per cycle.
        gaps = [process.next_gap() for _ in range(4000)]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap == pytest.approx(16.0, rel=0.1)

    def test_gaps_at_least_one(self):
        process = BernoulliInjection(settings(), 1.0, 1.0,
                                     np.random.default_rng(0))
        assert all(process.next_gap() == 1 for _ in range(10))

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            BernoulliInjection(settings(), 1.5, 1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            BernoulliInjection(settings(), -0.1, 1.0, np.random.default_rng(0))

    def test_zero_rate_cannot_sample(self):
        process = BernoulliInjection(settings(), 0.0, 1.0,
                                     np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            process.next_gap()


class TestPeriodicInjection:
    def test_exact_period(self):
        process = PeriodicInjection(settings(), 0.25, 1.0,
                                    np.random.default_rng(0))
        gaps = [process.next_gap() for _ in range(8)]
        assert gaps == [4] * 8

    def test_fractional_period_averages_out(self):
        # p = 0.3 -> period 10/3: gaps must average 3.33.
        process = PeriodicInjection(settings(), 0.3, 1.0,
                                    np.random.default_rng(0))
        gaps = [process.next_gap() for _ in range(300)]
        assert sum(gaps) / len(gaps) == pytest.approx(10 / 3, rel=0.02)


class TestFactory:
    def test_default_is_bernoulli(self):
        process = create_injection_process(settings(), 0.5, 1.0,
                                           np.random.default_rng(0))
        assert isinstance(process, BernoulliInjection)

    def test_periodic_by_name(self):
        process = create_injection_process(settings(type="periodic"), 0.5,
                                           1.0, np.random.default_rng(0))
        assert isinstance(process, PeriodicInjection)

"""The four-phase workload handshake (paper §IV-A, Fig. 4)."""

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


def two_app_config():
    config = small_torus_config()
    config["workload"]["applications"] = [
        {
            "type": "blast",
            "injection_rate": 0.15,
            "warmup_duration": 400,
            "generate_duration": 2000,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 2},
        },
        {
            "type": "pulse",
            "injection_rate": 0.4,
            "delay": 300,
            "duration": 500,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 2},
        },
    ]
    return config


def test_single_blast_reaches_draining():
    _sim, results = run_config(small_torus_config())
    assert results.drained
    workload = results.workload
    assert workload.start_tick is not None
    assert workload.stop_tick is not None
    assert workload.kill_tick is not None
    assert workload.start_tick < workload.stop_tick <= workload.kill_tick


def test_warmup_delays_start():
    config = small_torus_config(warmup_duration=700)
    _sim, results = run_config(config)
    assert results.workload.start_tick >= 700


def test_sampling_window_matches_generate_duration():
    config = small_torus_config(generate_duration=1200)
    _sim, results = run_config(config)
    assert results.workload.window_ticks() == 1200


def test_messages_outside_window_not_sampled():
    _sim, results = run_config(small_torus_config())
    workload = results.workload
    for record in results.records(sampled_only=False):
        if record.sampled:
            assert workload.start_tick <= record.created_tick
            assert record.created_tick <= workload.stop_tick


def test_blast_keeps_injecting_through_finishing():
    """After Stop, Blast stops *flagging* but not *sending* (Fig. 5)."""
    _sim, results = run_config(small_torus_config())
    workload = results.workload
    unsampled_after_stop = [
        r
        for r in results.records(sampled_only=False)
        if not r.sampled and r.created_tick is not None
        and r.created_tick > workload.stop_tick
    ]
    assert unsampled_after_stop, "no traffic generated during finishing"


def test_no_traffic_after_kill():
    _sim, results = run_config(small_torus_config())
    kill = results.workload.kill_tick
    for record in results.records(sampled_only=False):
        assert record.created_tick <= kill


def test_two_applications_interoperate():
    _sim, results = run_config(two_app_config())
    assert results.drained
    blast = results.records(application_id=0)
    pulse = results.records(application_id=1)
    assert blast and pulse


def test_pulse_burst_bounded_by_delay_and_duration():
    _sim, results = run_config(two_app_config())
    workload = results.workload
    pulse_records = results.records(application_id=1, sampled_only=False)
    start, delay, duration = workload.start_tick, 300, 500
    for record in pulse_records:
        assert start + delay <= record.created_tick
        assert record.created_tick <= start + delay + duration + 1


def test_pulse_disturbs_blast_latency():
    """Fig. 5's headline: Blast latency rises during the Pulse burst."""
    config = two_app_config()
    config["workload"]["applications"][1]["injection_rate"] = 0.7
    config["workload"]["applications"][0]["generate_duration"] = 3000
    _sim, results = run_config(config)
    workload = results.workload
    blast = results.records(application_id=0)
    burst_lo = workload.start_tick + 300
    burst_hi = burst_lo + 500
    during = [r.latency for r in blast
              if burst_lo <= r.created_tick <= burst_hi]
    before = [r.latency for r in blast if r.created_tick < burst_lo]
    assert during and before
    assert sum(during) / len(during) > 1.2 * (sum(before) / len(before))


def test_all_sampled_messages_delivered_when_drained():
    _sim, results = run_config(two_app_config())
    assert results.delivered_fraction() == 1.0
    for app in results.workload.applications:
        assert app.sampled_delivered == app.sampled_created


def test_workload_requires_an_application():
    from repro import SettingsError
    config = small_torus_config()
    config["workload"]["applications"] = []
    with pytest.raises(Exception):
        Simulation(Settings.from_dict(config))

"""Traffic patterns."""

import numpy as np
import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network
from repro.workload.traffic import TrafficError, create_traffic_pattern


def make_pattern(kind, num_terminals=16, network=None, seed=0, **extra):
    models.load_all()
    settings = Settings.from_dict({"type": kind, **extra})
    rng = np.random.default_rng(seed)
    return create_traffic_pattern(settings, num_terminals, network, rng)


def torus_network(widths, concentration=1):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "torus",
        "dimension_widths": widths,
        "concentration": concentration,
        "num_vcs": 2,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": "torus_dimension_order"},
    })
    return factory.create(Network, "torus", Simulator(), "network", None,
                          settings, RandomManager(1))


def clos_network(half_radix=2, num_levels=3):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "folded_clos",
        "half_radix": half_radix,
        "num_levels": num_levels,
        "num_vcs": 1,
        "channel_latency": 1,
        "router": {"architecture": "output_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": "clos_adaptive"},
    })
    return factory.create(Network, "folded_clos", Simulator(), "network",
                          None, settings, RandomManager(1))


class TestUniformRandom:
    def test_excludes_self_by_default(self):
        pattern = make_pattern("uniform_random")
        for _ in range(500):
            assert pattern.destination(3) != 3

    def test_covers_all_other_terminals(self):
        pattern = make_pattern("uniform_random", num_terminals=8)
        seen = {pattern.destination(0) for _ in range(500)}
        assert seen == set(range(1, 8))

    def test_allow_self(self):
        pattern = make_pattern("uniform_random", allow_self=True)
        seen = {pattern.destination(3) for _ in range(800)}
        assert 3 in seen

    def test_roughly_uniform(self):
        pattern = make_pattern("uniform_random", num_terminals=4)
        counts = {1: 0, 2: 0, 3: 0}
        trials = 3000
        for _ in range(trials):
            counts[pattern.destination(0)] += 1
        for count in counts.values():
            assert abs(count - trials / 3) < trials * 0.06

    def test_source_range_checked(self):
        pattern = make_pattern("uniform_random")
        with pytest.raises(TrafficError):
            pattern.destination(99)


class TestDeterministicPatterns:
    def test_bit_complement(self):
        pattern = make_pattern("bit_complement", num_terminals=16)
        assert pattern.destination(0) == 15
        assert pattern.destination(5) == 10
        # Involution: applying twice returns the source.
        for src in range(16):
            assert pattern.destination(pattern.destination(src)) == src

    def test_transpose(self):
        pattern = make_pattern("transpose", num_terminals=16)
        # (row 1, col 2) -> (row 2, col 1): 6 -> 9.
        assert pattern.destination(6) == 9
        for src in range(16):
            assert pattern.destination(pattern.destination(src)) == src

    def test_transpose_requires_square(self):
        with pytest.raises(TrafficError):
            make_pattern("transpose", num_terminals=12)

    def test_bit_reverse(self):
        pattern = make_pattern("bit_reverse", num_terminals=8)
        assert pattern.destination(1) == 4  # 001 -> 100
        assert pattern.destination(3) == 6  # 011 -> 110

    def test_bit_reverse_requires_power_of_two(self):
        with pytest.raises(TrafficError):
            make_pattern("bit_reverse", num_terminals=12)

    def test_neighbor(self):
        pattern = make_pattern("neighbor", num_terminals=8, offset=3)
        assert pattern.destination(0) == 3
        assert pattern.destination(7) == 2

    def test_all_to_one(self):
        pattern = make_pattern("all_to_one", num_terminals=8, target=2)
        assert all(pattern.destination(s) == 2 for s in range(8))

    def test_all_to_one_target_checked(self):
        with pytest.raises(TrafficError):
            make_pattern("all_to_one", num_terminals=4, target=9)


class TestRandomPermutation:
    def test_is_a_fixed_permutation(self):
        pattern = make_pattern("random_permutation", num_terminals=16)
        mapping = [pattern.destination(s) for s in range(16)]
        assert sorted(mapping) == list(range(16))
        # Stable across calls.
        assert mapping == [pattern.destination(s) for s in range(16)]


class TestTornado:
    def test_moves_half_way_in_each_dimension(self):
        network = torus_network([8, 8])
        pattern = make_pattern("tornado", num_terminals=64, network=network)
        # (0,0) -> (+3, +3) = router 3 + 3*8 = 27.
        assert pattern.destination(0) == 27

    def test_requires_lattice_network(self):
        with pytest.raises(TrafficError):
            make_pattern("tornado", num_terminals=8, network=None)

    def test_preserves_terminal_offset(self):
        network = torus_network([4, 4], concentration=2)
        pattern = make_pattern("tornado", num_terminals=32, network=network)
        assert pattern.destination(1) % 2 == 1


class TestUniformToRoot:
    def test_top_digit_always_differs(self):
        network = clos_network(half_radix=2, num_levels=3)
        pattern = make_pattern("uniform_to_root", num_terminals=8,
                               network=network)
        subtree = 4  # k^(n-1)
        for src in range(8):
            for _ in range(50):
                dst = pattern.destination(src)
                assert dst // subtree != src // subtree

    def test_requires_clos(self):
        with pytest.raises(TrafficError):
            make_pattern("uniform_to_root", num_terminals=8, network=None)

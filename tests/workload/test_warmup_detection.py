"""Automatic warmup detection in Blast."""

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


def auto_config(**overrides):
    config = small_torus_config()
    app = config["workload"]["applications"][0]
    app["warmup_mode"] = "auto"
    app["warmup_duration"] = 5000  # hard cap
    app["warmup_check_period"] = 200
    app.update(overrides)
    return config


def test_auto_warmup_reaches_steady_state_then_starts():
    _sim, results = run_config(auto_config())
    assert results.drained
    start = results.workload.start_tick
    # Detection needs at least two stable check windows...
    assert start >= 400
    # ...and must not ride all the way to the cap at this easy load.
    assert start < 5000


def test_auto_warmup_cap_fires_under_drifting_latency():
    """At saturation latency never stabilizes; the cap must fire."""
    config = auto_config(injection_rate=0.95, warmup_duration=1500)
    config["workload"]["applications"][0]["traffic"] = {"type": "tornado"}
    config["network"]["dimension_widths"] = [8]
    simulation = Simulation(Settings.from_dict(config))
    simulation.run(max_time=20_000)
    start = simulation.workload.start_tick
    assert start is not None
    assert start >= 1500  # fired at (or just past) the cap


def test_auto_warmup_starts_later_than_zero_fixed():
    fixed = small_torus_config(warmup_duration=0)
    _s, fixed_results = run_config(fixed)
    _s, auto_results = run_config(auto_config())
    assert auto_results.workload.start_tick > fixed_results.workload.start_tick


def test_invalid_warmup_mode_rejected():
    config = auto_config(warmup_mode="psychic")
    with pytest.raises(Exception):
        Simulation(Settings.from_dict(config))


def test_auto_mode_with_zero_rate_is_ready_at_cap():
    """No deliveries ever: detection cannot trigger, the cap must."""
    config = auto_config(injection_rate=0.0, warmup_duration=600)
    _sim, results = run_config(config)
    assert results.drained
    assert results.workload.start_tick >= 600

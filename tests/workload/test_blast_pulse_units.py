"""Unit-level behaviours of the Blast and Pulse applications."""

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


class TestBlast:
    def test_zero_rate_blast_is_immediately_done(self):
        """A Blast with no traffic walks the whole handshake instantly."""
        config = small_torus_config(injection_rate=0.0)
        _sim, results = run_config(config)
        assert results.drained
        assert results.workload.kill_tick is not None
        assert len(results.records(sampled_only=False)) == 0

    def test_generate_duration_zero_completes_immediately(self):
        config = small_torus_config(generate_duration=0)
        config["workload"]["applications"].append({
            "type": "pulse",
            "injection_rate": 0.3,
            "delay": 100,
            "duration": 300,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 2},
        })
        _sim, results = run_config(config)
        # The window is then defined by Pulse's Complete.
        assert results.drained
        assert results.workload.window_ticks() >= 400

    def test_warmup_traffic_is_unsampled(self):
        config = small_torus_config(warmup_duration=800)
        _sim, results = run_config(config)
        start = results.workload.start_tick
        unsampled_before = [
            r for r in results.records(sampled_only=False)
            if r.created_tick < start
        ]
        assert unsampled_before
        assert not any(r.sampled for r in unsampled_before)

    def test_counters_consistent(self):
        _sim, results = run_config(small_torus_config())
        app = results.workload.applications[0]
        assert app.messages_delivered == app.messages_created
        assert app.sampled_created <= app.messages_created
        assert app.flits_created >= app.messages_created  # 4-flit messages


class TestPulse:
    def _config(self, **pulse_overrides):
        config = small_torus_config(generate_duration=3000)
        pulse = {
            "type": "pulse",
            "injection_rate": 0.5,
            "delay": 500,
            "duration": 400,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 2},
        }
        pulse.update(pulse_overrides)
        config["workload"]["applications"].append(pulse)
        return config

    def test_pulse_restricted_to_first_terminals(self):
        _sim, results = run_config(self._config(num_terminals=4))
        sources = {r.source for r in results.records(application_id=1,
                                                     sampled_only=False)}
        assert sources <= {0, 1, 2, 3}

    def test_pulse_terminal_count_validated(self):
        config = self._config(num_terminals=999)
        with pytest.raises(Exception):
            Simulation(Settings.from_dict(config))

    def test_zero_rate_pulse_completes(self):
        _sim, results = run_config(self._config(injection_rate=0.0))
        assert results.drained
        assert not results.records(application_id=1, sampled_only=False)

    def test_pulse_messages_counted_per_app(self):
        _sim, results = run_config(self._config())
        pulse_app = results.workload.applications[1]
        assert pulse_app.messages_created > 0
        assert pulse_app.messages_delivered == pulse_app.messages_created

"""Handshake protocol enforcement in the Workload FSM."""

import pytest

from repro import Settings, Simulation
from repro.workload.workload import Phase, WorkloadError
from tests.conftest import run_config, small_torus_config


def build(config):
    return Simulation(Settings.from_dict(config))


def test_double_ready_rejected():
    simulation = build(small_torus_config())
    workload = simulation.workload
    app = workload.applications[0]

    def double_ready(event):
        workload.application_ready(app)
        with pytest.raises(WorkloadError):
            workload.application_ready(app)

    # Intercept before the app's own Ready by driving the protocol by
    # hand on a fresh workload: easiest is to call at tick 0 epsilon 0.
    simulation.simulator.call_at(0, double_ready, epsilon=0)
    with pytest.raises(WorkloadError):
        simulation.run(max_time=1000)


def test_complete_during_warming_rejected():
    simulation = build(small_torus_config())
    workload = simulation.workload
    app = workload.applications[0]

    def early_complete(event):
        with pytest.raises(WorkloadError):
            workload.application_complete(app)

    simulation.simulator.call_at(0, early_complete, epsilon=0)
    simulation.run(max_time=2000)


def test_done_during_generating_rejected():
    simulation = build(small_torus_config(warmup_duration=0))
    workload = simulation.workload
    app = workload.applications[0]
    seen = {}

    def probe(event):
        seen["phase"] = workload.phase
        if workload.phase == Phase.GENERATING:
            with pytest.raises(WorkloadError):
                workload.application_done(app)

    simulation.simulator.call_at(50, probe)
    simulation.run(max_time=100_000)
    assert seen["phase"] in (Phase.GENERATING, Phase.FINISHING,
                             Phase.DRAINING)


def test_phase_progression_order():
    simulation = build(small_torus_config())
    workload = simulation.workload
    observed = []

    def sample(event):
        observed.append(workload.phase)
        if workload.phase != Phase.DRAINING:
            simulation.simulator.call_at(
                simulation.simulator.tick + 100, sample)

    simulation.simulator.call_at(1, sample)
    simulation.run(max_time=200_000)
    # Phases never move backwards.
    order = [Phase.WARMING, Phase.GENERATING, Phase.FINISHING,
             Phase.DRAINING]
    indices = [order.index(p) for p in observed]
    assert indices == sorted(indices)
    assert observed[-1] == Phase.DRAINING


def test_empty_application_list_rejected():
    config = small_torus_config()
    config["workload"]["applications"] = []
    with pytest.raises(Exception):
        build(config)


def test_unknown_application_type_rejected():
    config = small_torus_config()
    config["workload"]["applications"][0]["type"] = "fuzzer"
    with pytest.raises(Exception):
        build(config)

"""The command line entry point (paper Listing 1)."""

import json

import pytest

from repro.__main__ import main
from tests.conftest import small_torus_config


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "myconfig.json"
    config = small_torus_config()
    config["workload"]["applications"][0]["generate_duration"] = 500
    path.write_text(json.dumps(config))
    return path


def test_basic_run(config_file, capsys):
    code = main([str(config_file)])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["drained"] is True
    assert summary["latency"]["count"] > 0


def test_listing1_style_overrides(config_file, capsys):
    code = main([
        str(config_file),
        "network.concentration=uint=2",
        "workload.applications.0.injection_rate=float=0.05",
    ])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["offered_load"] == pytest.approx(0.05, abs=0.03)


def test_quiet_mode(config_file, capsys):
    main([str(config_file), "--quiet"])
    assert capsys.readouterr().out == ""


def test_output_artifacts(tmp_path, config_file):
    log_path = tmp_path / "messages.jsonl"
    summary_path = tmp_path / "summary.json"
    code = main([
        str(config_file),
        f'output.message_log=string={log_path}',
        f'output.summary=string={summary_path}',
        "--quiet",
    ])
    assert code == 0
    assert summary_path.exists()
    summary = json.loads(summary_path.read_text())
    assert summary["message_log"]["records"] > 0
    assert log_path.exists()
    first = json.loads(log_path.read_text().splitlines()[0])
    assert "src" in first and "dst" in first


def test_max_time_flag_truncates(config_file):
    code = main([str(config_file), "--max-time=100", "--quiet"])
    # 100 ticks is inside warmup: nothing drained -> exit code 1.
    assert code == 1


def test_missing_config_errors(tmp_path):
    with pytest.raises(FileNotFoundError):
        main([str(tmp_path / "nope.json")])

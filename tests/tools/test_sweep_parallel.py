"""Parallel sweeps: determinism and failure capture across worker counts.

The satellite requirement: the same seed + the same sweep run with
``workers=1`` and ``workers=4`` must produce byte-identical
``to_rows()`` output.  Each simulation is independently seeded from its
resolved settings, so where a job executes cannot leak into its result.
"""

import json

import pytest

from repro.tools.sssweep import Sweep
from tests.conftest import small_torus_config


def _make_sweep():
    sweep = Sweep(small_torus_config(), name="det", max_time=1_500)
    sweep.add_variable(
        "InjectionRate", "IR", [0.1, 0.2],
        lambda rate: f"workload.applications[0].injection_rate=float={rate}")
    sweep.add_variable(
        "Seed", "S", [7, 8],
        lambda seed: f"simulator.seed=uint={seed}")
    return sweep


def test_parallel_sweep_rows_byte_identical_to_serial():
    serial = _make_sweep()
    serial.run(workers=1)
    parallel = _make_sweep()
    parallel.run(workers=4)
    assert json.dumps(serial.to_rows(), sort_keys=True) == json.dumps(
        parallel.to_rows(), sort_keys=True
    )
    # And jobs landed in cross-product order with real results.
    assert [job.job_id for job in parallel.jobs] == [
        "IR0.1_S7", "IR0.1_S8", "IR0.2_S7", "IR0.2_S8",
    ]
    assert all(job.result is not None for job in parallel.jobs)
    assert all(job.error is None for job in parallel.jobs)


def test_parallel_sweep_observer_sees_every_job():
    sweep = _make_sweep()
    seen = []
    sweep.run(observer=lambda job: seen.append(job.job_id), workers=2)
    assert seen == [job.job_id for job in sweep.jobs]


def test_parallel_sweep_captures_per_job_failure():
    sweep = Sweep(small_torus_config(), name="bad", max_time=500)
    # An override naming a bogus topology fails inside the worker; the
    # error must come back attached to the right job.
    sweep.add_variable(
        "Topology", "T", ["torus", "no_such_topology"],
        lambda t: f"network.topology=string={t}")
    sweep.run(workers=2)
    good, bad = sweep.jobs
    assert good.error is None and good.result is not None
    assert bad.error is not None and bad.result is None
    rows = sweep.to_rows()
    assert "error" in rows[1] and "error" not in rows[0]

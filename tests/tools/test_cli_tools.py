"""The ssparse and ssplot command line executables."""

import json

import pytest

from repro.tools.cli import ssparse_main, ssplot_main
from tests.conftest import run_config, small_torus_config


@pytest.fixture(scope="module")
def log_file(tmp_path_factory):
    simulation, _results = run_config(small_torus_config())
    path = tmp_path_factory.mktemp("logs") / "messages.jsonl"
    simulation.message_log.write_jsonl(str(path))
    return path


def test_ssparse_summary(log_file, capsys):
    code = ssparse_main([str(log_file), "+sampled=true"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["messages"] > 0
    assert summary["message_latency"]["mean"] > 0


def test_ssparse_filters_reduce(log_file, capsys):
    ssparse_main([str(log_file)])
    all_count = json.loads(capsys.readouterr().out)["messages"]
    ssparse_main([str(log_file), "+src=0"])
    filtered = json.loads(capsys.readouterr().out)["messages"]
    assert 0 < filtered < all_count


def test_ssparse_csv_export(log_file, tmp_path, capsys):
    out = tmp_path / "samples.csv"
    code = ssparse_main([str(log_file), "--csv", str(out)])
    assert code == 0
    assert out.read_text().startswith("id,app,")


def test_ssparse_empty_result_exit_code(log_file, capsys):
    code = ssparse_main([str(log_file), "+app=42"])
    assert code == 1


@pytest.mark.parametrize("kind", ["percentile", "pdf", "cdf", "timeline"])
def test_ssplot_kinds(log_file, kind, capsys, tmp_path):
    csv = tmp_path / f"{kind}.csv"
    code = ssplot_main([str(log_file), "--kind", kind, "--csv", str(csv)])
    assert code == 0
    out = capsys.readouterr().out
    assert "|" in out  # the ASCII frame
    assert csv.exists()


def test_ssplot_latency_kind_option(log_file, capsys):
    code = ssplot_main([str(log_file), "--kind", "cdf",
                        "--latency", "network"])
    assert code == 0


def test_ssplot_no_matches(log_file, capsys):
    code = ssplot_main([str(log_file), "+app=42"])
    assert code == 1

"""Additional taskrun coverage: parallel workers, skipped chains."""

import threading
import time

from repro.tools.taskrun import FunctionTask, TaskManager, TaskState


def test_parallel_workers_actually_overlap():
    barrier = threading.Barrier(2, timeout=5)

    def rendezvous():
        barrier.wait()  # deadlocks unless two tasks run concurrently

    manager = TaskManager(num_workers=2)
    manager.add_task(FunctionTask("a", rendezvous))
    manager.add_task(FunctionTask("b", rendezvous))
    states = manager.run()
    assert all(s == TaskState.SUCCEEDED for s in states.values())


def test_skip_chain_propagates_execution():
    """A chain of skipped tasks still unblocks the final runnable one."""
    ran = []
    manager = TaskManager()
    first = manager.add_task(
        FunctionTask("first", lambda: ran.append("first"),
                     condition=lambda: False))
    second = manager.add_task(
        FunctionTask("second", lambda: ran.append("second"),
                     condition=lambda: False))
    final = manager.add_task(FunctionTask("final", lambda: ran.append("final")))
    second.depends_on(first)
    final.depends_on(second)
    states = manager.run()
    assert ran == ["final"]
    assert states["first"] == TaskState.SKIPPED
    assert states["second"] == TaskState.SKIPPED
    assert states["final"] == TaskState.SUCCEEDED


def test_condition_evaluated_after_dependencies():
    """Conditions see the state produced by their dependencies (the
    incremental-build idiom: 'skip if the output already exists')."""
    artifacts = set()
    manager = TaskManager()
    producer = manager.add_task(
        FunctionTask("producer", lambda: artifacts.add("out")))
    consumer = manager.add_task(
        FunctionTask("consumer", lambda: artifacts.add("bad"),
                     condition=lambda: "out" not in artifacts))
    consumer.depends_on(producer)
    states = manager.run()
    assert states["consumer"] == TaskState.SKIPPED
    assert artifacts == {"out"}


def test_many_tasks_with_shared_resource_all_complete():
    counter = {"n": 0}
    lock = threading.Lock()

    def bump():
        with lock:
            counter["n"] += 1

    manager = TaskManager(resources={"slot": 3}, num_workers=4)
    for i in range(20):
        manager.add_task(FunctionTask(f"t{i}", bump, resources={"slot": 1}))
    states = manager.run()
    assert counter["n"] == 20
    assert all(s == TaskState.SUCCEEDED for s in states.values())


def test_result_and_error_fields():
    manager = TaskManager()
    good = manager.add_task(FunctionTask("good", lambda: "value"))
    bad = manager.add_task(FunctionTask("bad", lambda: 1 / 0))
    manager.run()
    assert good.result == "value"
    assert good.error is None
    assert bad.result is None
    assert isinstance(bad.error, ZeroDivisionError)

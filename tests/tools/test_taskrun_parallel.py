"""ParallelTaskManager: process fan-out, dependencies, timeouts, fallback.

Worker payloads must be module-level functions -- spawned processes
pickle the ``(func, args, kwargs)`` triple.  Anything unpicklable (the
lambdas the serial manager happily runs) must fall back to inline
execution rather than fail.
"""

import os
import sys
import time

import pytest

from repro.tools.taskrun import (
    FunctionTask,
    ParallelTaskManager,
    ProcessTask,
    TaskState,
    TaskTimeout,
)


def _square(x):
    return x * x


def _boom():
    raise ValueError("boom")


def _sleep_forever():
    time.sleep(300)
    return "too late"


def _pid():
    return os.getpid()


def test_parallel_function_tasks_return_results():
    manager = ParallelTaskManager(num_workers=2)
    tasks = [
        manager.add_task(FunctionTask(f"sq{i}", _square, (i,)))
        for i in range(5)
    ]
    states = manager.run()
    assert all(s == TaskState.SUCCEEDED for s in states.values())
    assert [t.result for t in tasks] == [0, 1, 4, 9, 16]
    # Result ordering follows task insertion order, not completion order.
    assert list(states) == [f"sq{i}" for i in range(5)]


def test_parallel_runs_in_worker_processes():
    manager = ParallelTaskManager(num_workers=2)
    tasks = [manager.add_task(FunctionTask(f"p{i}", _pid)) for i in range(2)]
    manager.run()
    for task in tasks:
        assert task.state == TaskState.SUCCEEDED
        assert task.result != os.getpid()


def test_parallel_dependencies_honored():
    manager = ParallelTaskManager(num_workers=2)
    a = manager.add_task(FunctionTask("a", _square, (2,)))
    b = manager.add_task(FunctionTask("b", _square, (3,)))
    b.depends_on(a)
    states = manager.run()
    assert states == {"a": TaskState.SUCCEEDED, "b": TaskState.SUCCEEDED}


def test_parallel_failure_cancels_dependents():
    manager = ParallelTaskManager(num_workers=2)
    bad = manager.add_task(FunctionTask("bad", _boom))
    child = manager.add_task(FunctionTask("child", _square, (1,)))
    other = manager.add_task(FunctionTask("other", _square, (5,)))
    child.depends_on(bad)
    states = manager.run()
    assert states["bad"] == TaskState.FAILED
    assert isinstance(bad.error, ValueError)
    assert states["child"] == TaskState.CANCELLED
    # Independent subgraphs keep running.
    assert states["other"] == TaskState.SUCCEEDED
    assert other.result == 25


def test_unpicklable_payload_falls_back_inline():
    captured = []
    manager = ParallelTaskManager(num_workers=2)
    # A closure over a local list does not pickle; it must run inline
    # (in this process) instead of failing.
    manager.add_task(FunctionTask("closure", lambda: captured.append(1) or 7))
    picklable = manager.add_task(FunctionTask("plain", _square, (4,)))
    states = manager.run()
    assert states["closure"] == TaskState.SUCCEEDED
    assert captured == [1]
    assert picklable.result == 16


def test_parallel_condition_skips():
    manager = ParallelTaskManager(num_workers=2)
    manager.add_task(FunctionTask("skipme", _square, (1,),
                                  condition=lambda: False))
    states = manager.run()
    assert states["skipme"] == TaskState.SKIPPED


def test_parallel_process_task():
    manager = ParallelTaskManager(num_workers=2)
    task = manager.add_task(
        ProcessTask("echo", [sys.executable, "-c", "print('hi')"])
    )
    states = manager.run()
    assert states["echo"] == TaskState.SUCCEEDED
    assert task.result == 0
    assert task.stdout.strip() == "hi"


def test_parallel_timeout_fails_task():
    manager = ParallelTaskManager(num_workers=2)
    slow = manager.add_task(
        FunctionTask("slow", _sleep_forever, timeout=0.3)
    )
    quick = manager.add_task(FunctionTask("quick", _square, (6,)))
    start = time.monotonic()
    states = manager.run()
    elapsed = time.monotonic() - start
    assert states["slow"] == TaskState.FAILED
    assert isinstance(slow.error, TaskTimeout)
    assert states["quick"] == TaskState.SUCCEEDED
    assert quick.result == 36
    # The abandoned worker must not hold the run hostage for 300s.
    assert elapsed < 60

"""Additional ssplot coverage: emit paths and edge cases."""

import math

import pytest

from repro.stats.latency import LatencyDistribution
from repro.tools.ssplot import (
    LoadLatencyPlot,
    PlotData,
    latency_pdf,
    latency_vs_time,
)


def test_plotdata_multiple_series_legend():
    plot = PlotData("multi", "x", "y")
    plot.add("alpha", [0, 1], [0, 1])
    plot.add("beta", [0, 1], [1, 0])
    text = plot.render_ascii(width=20, height=8)
    assert "o=alpha" in text
    assert "x=beta" in text


def test_plotdata_single_point():
    plot = PlotData("point", "x", "y")
    plot.add("s", [5], [7])
    text = plot.render_ascii(width=10, height=4)
    assert "o" in text


def test_plotdata_constant_series():
    # Zero y-span must not divide by zero.
    plot = PlotData("flat", "x", "y")
    plot.add("s", [0, 1, 2], [3, 3, 3])
    assert "flat" in plot.render_ascii(width=12, height=4)


def test_loadlatency_all_saturated():
    plot = LoadLatencyPlot()
    plot.add_point(0.5, LatencyDistribution([10]), saturated=True)
    data = plot.build()
    assert data.series == []
    assert plot.saturation_load() == 0.5


def test_loadlatency_empty_distribution_skipped():
    plot = LoadLatencyPlot()
    plot.add_point(0.1, LatencyDistribution([]))
    plot.add_point(0.2, LatencyDistribution([5, 6]))
    data = plot.build()
    mean = data.series[0]
    assert list(mean.x) == [0.2]


def test_latency_pdf_empty():
    plot = latency_pdf(LatencyDistribution([]))
    assert len(plot.series[0]) == 0


def test_latency_vs_time_empty():
    plot = latency_vs_time([], bin_ticks=10)
    assert len(plot.series[0]) == 0


def test_csv_header_uses_labels(tmp_path):
    plot = PlotData("t", "load (flits/cycle)", "latency (ns)")
    plot.add("mean", [0.1], [42])
    path = tmp_path / "out.csv"
    plot.write_csv(str(path))
    header = path.read_text().splitlines()[1]
    assert header == "series,load (flits/cycle),latency (ns)"

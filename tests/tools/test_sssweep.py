"""sssweep: sweep generation and execution (paper §V, Listing 2)."""

import pytest

from repro.tools.sssweep import Sweep
from tests.conftest import small_torus_config


def quick_collect(results):
    return {
        "drained": results.drained,
        "accepted": results.accepted_load(),
        "mean_latency": results.latency().mean(),
    }


def tiny_base():
    config = small_torus_config()
    config["workload"]["applications"][0]["warmup_duration"] = 100
    config["workload"]["applications"][0]["generate_duration"] = 400
    return config


class TestJobGeneration:
    def test_cross_product_and_ids(self):
        sweep = Sweep(tiny_base(), name="demo")
        sweep.add_variable("Latency", "CL", [1, 2, 4],
                           lambda v: f"network.channel_latency=uint={v}")
        sweep.add_variable("Rate", "R", [0.1, 0.2],
                           lambda v: f"workload.applications.0.injection_rate=float={v}")
        jobs = sweep.generate_jobs()
        assert len(jobs) == 6
        assert sweep.num_jobs == 6
        assert jobs[0].job_id == "CL1_R0.1"
        assert jobs[-1].job_id == "CL4_R0.2"

    def test_listing2_style_declaration(self):
        """The paper's Listing 2, almost verbatim."""
        latencies = [1, 2, 4, 8, 16, 32, 64]

        def set_latency(latency):
            return "network.channel_latency=uint=" + str(latency)

        sweep = Sweep(tiny_base())
        sweep.add_variable("ChannelLatency", "CL", latencies, set_latency)
        assert sweep.num_jobs == 7
        jobs = sweep.generate_jobs()
        assert jobs[3].overrides == ["network.channel_latency=uint=8"]

    def test_override_fn_may_return_list(self):
        sweep = Sweep(tiny_base())
        sweep.add_variable(
            "VCs", "V", [2, 4],
            lambda v: [f"network.num_vcs=uint={v}"],
        )
        jobs = sweep.generate_jobs()
        assert jobs[0].overrides == ["network.num_vcs=uint=2"]

    def test_duplicate_short_name_rejected(self):
        sweep = Sweep(tiny_base())
        sweep.add_variable("A", "X", [1], lambda v: "a=uint=1")
        with pytest.raises(ValueError):
            sweep.add_variable("B", "X", [1], lambda v: "b=uint=1")

    def test_empty_values_rejected(self):
        sweep = Sweep(tiny_base())
        with pytest.raises(ValueError):
            sweep.add_variable("A", "A", [], lambda v: "")

    def test_settings_for_applies_overrides(self):
        sweep = Sweep(tiny_base())
        sweep.add_variable("Latency", "CL", [9],
                           lambda v: f"network.channel_latency=uint={v}")
        job = sweep.generate_jobs()[0]
        settings = sweep.settings_for(job)
        assert settings.child("network").get_uint("channel_latency") == 9


class TestExecution:
    def test_run_collects_results(self):
        sweep = Sweep(tiny_base(), name="exec", collect=quick_collect,
                      max_time=100_000)
        sweep.add_variable(
            "Rate", "R", [0.05, 0.15],
            lambda v: f"workload.applications.0.injection_rate=float={v}")
        sweep.run()
        rows = sweep.to_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["drained"]
            assert row["accepted"] == pytest.approx(row["Rate"], abs=0.05)

    def test_observer_called_per_job(self):
        seen = []
        sweep = Sweep(tiny_base(), collect=quick_collect, max_time=100_000)
        sweep.add_variable(
            "Rate", "R", [0.05],
            lambda v: f"workload.applications.0.injection_rate=float={v}")
        sweep.run(observer=lambda job: seen.append(job.job_id))
        assert seen == ["R0.05"]

    def test_failed_job_records_error(self):
        sweep = Sweep(tiny_base(), collect=quick_collect)
        sweep.add_variable(
            "Arch", "A", ["no_such_architecture"],
            lambda v: f"network.router.architecture=string={v}")
        sweep.run()
        rows = sweep.to_rows()
        assert "error" in rows[0]

    def test_csv_and_html_outputs(self, tmp_path):
        sweep = Sweep(tiny_base(), name="outputs", collect=quick_collect,
                      max_time=100_000)
        sweep.add_variable(
            "Rate", "R", [0.05],
            lambda v: f"workload.applications.0.injection_rate=float={v}")
        sweep.run()
        csv_path = tmp_path / "sweep.csv"
        html_path = tmp_path / "index.html"
        assert sweep.write_csv(str(csv_path)) == 1
        sweep.write_html_index(str(html_path))
        assert "job_id" in csv_path.read_text()
        html = html_path.read_text()
        assert "outputs" in html
        assert "R0.05" in html

    def test_run_without_variables_rejected(self):
        sweep = Sweep(tiny_base())
        with pytest.raises(ValueError):
            sweep.generate_jobs()

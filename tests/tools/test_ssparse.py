"""ssparse: the filter language and aggregations (paper §V)."""

import pytest

from repro.stats.records import MessageRecord
from repro.tools.ssparse import (
    Filter,
    FilterError,
    apply_filters,
    parse_records,
)


def record(app=0, src=0, dst=1, flits=1, created=100, delivered=150,
           sampled=True, nonmin=False, hops=3):
    data = {
        "id": 1, "app": app, "txn": 1, "src": src, "dst": dst,
        "flits": flits, "sampled": sampled, "created": created,
        "delivered": delivered, "min_hops": hops,
        "packets": [{"send": created, "recv": delivered, "hops": hops,
                     "nonmin": nonmin}],
    }
    return MessageRecord.from_dict(data)


class TestFilterParsing:
    def test_exact_match(self):
        f = Filter("+app=0")
        assert f.admits(record(app=0))
        assert not f.admits(record(app=1))

    def test_drop_polarity(self):
        f = Filter("-app=0")
        assert not f.admits(record(app=0))
        assert f.admits(record(app=1))

    def test_paper_send_range_example(self):
        """'+send=500-1000' keeps traffic sent from 500 to 1000."""
        f = Filter("+send=500-1000")
        assert f.admits(record(created=500))
        assert f.admits(record(created=750))
        assert f.admits(record(created=1000))
        assert not f.admits(record(created=499))
        assert not f.admits(record(created=1001))

    def test_open_ranges(self):
        assert Filter("+send=500-").admits(record(created=10**9))
        assert not Filter("+send=500-").admits(record(created=499))
        assert Filter("+send=-500").admits(record(created=0))
        assert not Filter("+send=-500").admits(record(created=501))

    def test_value_set(self):
        f = Filter("+dst=1,3,5")
        assert f.admits(record(dst=3))
        assert not f.admits(record(dst=2))

    def test_boolean_fields(self):
        assert Filter("+sampled=true").admits(record(sampled=True))
        assert not Filter("+sampled=true").admits(record(sampled=False))
        assert Filter("+nonmin=false").admits(record(nonmin=False))

    def test_latency_field(self):
        f = Filter("+latency=50-60")
        assert f.admits(record(created=100, delivered=155))
        assert not f.admits(record(created=100, delivered=180))

    def test_malformed_filters(self):
        for bad in ("app=0", "+app", "+unknown=3", "*app=1", "+sampled=maybe"):
            with pytest.raises(FilterError):
                Filter(bad)


class TestApplyFilters:
    def test_conjunction(self):
        records = [
            record(app=0, created=400),
            record(app=0, created=600),
            record(app=1, created=600),
        ]
        kept = apply_filters(records, ["+app=0", "+send=500-1000"])
        assert len(kept) == 1
        assert kept[0].created_tick == 600

    def test_no_filters_keeps_all(self):
        records = [record(), record()]
        assert len(apply_filters(records, [])) == 2


class TestParseResult:
    def test_summary(self):
        records = [record(delivered=150), record(delivered=160),
                   record(nonmin=True)]
        result = parse_records(records)
        summary = result.summary()
        assert summary["messages"] == 3
        assert summary["message_latency"]["count"] == 3
        assert summary["non_minimal_fraction"] == pytest.approx(1 / 3)
        assert summary["mean_hops"] == 3.0

    def test_latency_kinds(self):
        result = parse_records([record(created=0, delivered=100)])
        assert result.latency("message").mean() == 100.0
        assert result.latency("packet").mean() == 100.0

    def test_csv_export(self, tmp_path):
        result = parse_records([record(), record(app=2)])
        path = tmp_path / "out.csv"
        count = result.write_csv(str(path))
        assert count == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("id,app,")
        assert len(lines) == 3

    def test_empty_result(self):
        result = parse_records([], ["+app=5"])
        summary = result.summary()
        assert summary["messages"] == 0
        assert summary["message_latency"] is None

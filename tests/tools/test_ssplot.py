"""ssplot: plot data builders and renderers."""

import numpy as np
import pytest

from repro.stats.latency import LatencyDistribution
from repro.tools.ssplot import (
    LoadLatencyPlot,
    PlotData,
    Series,
    latency_cdf,
    latency_pdf,
    latency_vs_time,
    percentile_distribution,
)


class RecordStub:
    def __init__(self, created, latency):
        self.created_tick = created
        self.latency = latency


class TestPlotData:
    def test_series_length_check(self):
        with pytest.raises(ValueError):
            Series("bad", [1, 2], [1])

    def test_csv_export(self, tmp_path):
        plot = PlotData("test", "x", "y")
        plot.add("a", [1, 2], [10, 20])
        plot.add("b", [1], [5])
        path = tmp_path / "plot.csv"
        plot.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "# test"
        assert lines[1] == "series,x,y"
        assert "a,1,10" in lines
        assert "b,1,5" in lines

    def test_ascii_render(self):
        plot = PlotData("demo", "load", "latency")
        plot.add("mean", [0.1, 0.2, 0.3], [10, 20, 40])
        text = plot.render_ascii(width=40, height=10)
        assert "demo" in text
        assert "o=mean" in text
        assert "o" in text

    def test_ascii_render_empty(self):
        plot = PlotData("empty", "x", "y")
        assert "(no data)" in plot.render_ascii()

    def test_ascii_render_skips_nan(self):
        plot = PlotData("nan", "x", "y")
        plot.add("s", [1, 2, 3], [1, float("nan"), 3])
        text = plot.render_ascii(width=20, height=5)
        assert "nan" in text  # the title, not a crash


class TestBuilders:
    def test_latency_vs_time_binning(self):
        records = [RecordStub(0, 10), RecordStub(5, 20), RecordStub(105, 50)]
        plot = latency_vs_time(records, bin_ticks=100)
        series = plot.series[0]
        assert len(series) == 2
        assert series.y[0] == 15.0
        assert series.y[1] == 50.0

    def test_percentile_distribution(self):
        dist = LatencyDistribution(np.random.default_rng(0).exponential(100, 5000))
        plot = percentile_distribution(dist, max_nines=3)
        series = plot.series[0]
        assert all(np.diff(series.x) >= 0)

    def test_pdf_cdf(self):
        dist = LatencyDistribution([1, 2, 3, 4, 5])
        assert len(latency_pdf(dist, num_bins=5).series[0]) == 5
        cdf = latency_cdf(dist).series[0]
        assert cdf.y[-1] == 1.0


class TestLoadLatencyPlot:
    def _dist(self, base):
        return LatencyDistribution(range(base, base + 100))

    def test_lines_stop_at_saturation(self):
        """A saturated network yields unbounded latency; the plot lines
        stop there (paper Fig. 8)."""
        plot = LoadLatencyPlot()
        plot.add_point(0.1, self._dist(10))
        plot.add_point(0.5, self._dist(30))
        plot.add_point(0.9, self._dist(10_000), saturated=True)
        data = plot.build()
        mean = next(s for s in data.series if s.name == "mean")
        assert list(mean.x) == [0.1, 0.5]
        assert plot.saturation_load() == 0.9

    def test_percentile_lines_present(self):
        plot = LoadLatencyPlot(percentiles=(50.0, 99.0))
        plot.add_point(0.2, self._dist(10))
        data = plot.build()
        names = {s.name for s in data.series}
        assert names == {"mean", "p50", "p99"}

    def test_points_sorted_by_load(self):
        plot = LoadLatencyPlot()
        plot.add_point(0.5, self._dist(30))
        plot.add_point(0.1, self._dist(10))
        data = plot.build()
        mean = data.series[0]
        assert list(mean.x) == [0.1, 0.5]

    def test_throughput_table(self):
        plot = LoadLatencyPlot()
        plot.add_point(0.1, self._dist(10))
        plot.add_point(0.3, self._dist(20))
        table = plot.throughput_table()
        assert [round(load, 1) for load, _m in table] == [0.1, 0.3]

    def test_no_points(self):
        assert LoadLatencyPlot().build().series == []
        assert LoadLatencyPlot().saturation_load() is None

"""taskrun: dependency ordering, resources, conditions, failures."""

import threading
import time

import pytest

from repro.tools.taskrun import (
    FunctionTask,
    ProcessTask,
    ResourceManager,
    Task,
    TaskError,
    TaskManager,
    TaskState,
)


def test_dependency_order():
    order = []
    manager = TaskManager()
    a = manager.add_task(FunctionTask("a", lambda: order.append("a")))
    b = manager.add_task(FunctionTask("b", lambda: order.append("b")))
    c = manager.add_task(FunctionTask("c", lambda: order.append("c")))
    c.depends_on(b)
    b.depends_on(a)
    states = manager.run()
    assert order == ["a", "b", "c"]
    assert all(s == TaskState.SUCCEEDED for s in states.values())


def test_diamond_dependencies():
    order = []
    manager = TaskManager()
    top = manager.add_task(FunctionTask("top", lambda: order.append("top")))
    left = manager.add_task(FunctionTask("left", lambda: order.append("left")))
    right = manager.add_task(FunctionTask("right", lambda: order.append("right")))
    bottom = manager.add_task(FunctionTask("bottom", lambda: order.append("bottom")))
    left.depends_on(top)
    right.depends_on(top)
    bottom.depends_on(left, right)
    manager.run()
    assert order[0] == "top"
    assert order[-1] == "bottom"
    assert set(order[1:3]) == {"left", "right"}


def test_results_propagate():
    manager = TaskManager()
    task = manager.add_task(FunctionTask("compute", lambda x: x * 2, args=(21,)))
    manager.run()
    assert task.result == 42


def test_failure_cancels_dependents_but_not_siblings():
    ran = []
    manager = TaskManager()

    def boom():
        raise RuntimeError("nope")

    failing = manager.add_task(FunctionTask("failing", boom))
    child = manager.add_task(FunctionTask("child", lambda: ran.append("child")))
    grandchild = manager.add_task(
        FunctionTask("grandchild", lambda: ran.append("grandchild"))
    )
    independent = manager.add_task(
        FunctionTask("independent", lambda: ran.append("independent"))
    )
    child.depends_on(failing)
    grandchild.depends_on(child)
    states = manager.run()
    assert states["failing"] == TaskState.FAILED
    assert states["child"] == TaskState.CANCELLED
    assert states["grandchild"] == TaskState.CANCELLED
    assert states["independent"] == TaskState.SUCCEEDED
    assert ran == ["independent"]
    assert not manager.succeeded()
    assert [t.name for t in manager.failures()] == ["failing"]


def test_condition_skips_task_but_runs_dependents():
    ran = []
    manager = TaskManager()
    skipped = manager.add_task(
        FunctionTask("skipped", lambda: ran.append("skipped"),
                     condition=lambda: False)
    )
    dependent = manager.add_task(
        FunctionTask("dependent", lambda: ran.append("dependent"))
    )
    dependent.depends_on(skipped)
    states = manager.run()
    assert states["skipped"] == TaskState.SKIPPED
    assert states["dependent"] == TaskState.SUCCEEDED
    assert ran == ["dependent"]
    assert manager.succeeded()


def test_condition_true_runs():
    ran = []
    manager = TaskManager()
    manager.add_task(
        FunctionTask("maybe", lambda: ran.append("maybe"),
                     condition=lambda: True)
    )
    manager.run()
    assert ran == ["maybe"]


def test_cycle_detected():
    manager = TaskManager()
    a = manager.add_task(FunctionTask("a", lambda: None))
    b = manager.add_task(FunctionTask("b", lambda: None))
    a.depends_on(b)
    b.depends_on(a)
    with pytest.raises(TaskError):
        manager.run()


def test_self_dependency_rejected():
    task = FunctionTask("a", lambda: None)
    with pytest.raises(TaskError):
        task.depends_on(task)


def test_unknown_dependency_rejected():
    manager = TaskManager()
    a = manager.add_task(FunctionTask("a", lambda: None))
    ghost = FunctionTask("ghost", lambda: None)
    a.depends_on(ghost)
    with pytest.raises(TaskError):
        manager.run()


def test_resource_limits_concurrency():
    active = []
    peak = []
    lock = threading.Lock()

    def work():
        with lock:
            active.append(1)
            peak.append(len(active))
        time.sleep(0.02)
        with lock:
            active.pop()

    manager = TaskManager(resources={"cpus": 2}, num_workers=4)
    for i in range(6):
        manager.add_task(
            FunctionTask(f"t{i}", work, resources={"cpus": 1})
        )
    manager.run()
    assert max(peak) <= 2


def test_impossible_demand_rejected_at_add():
    manager = TaskManager(resources={"mem": 4})
    with pytest.raises(TaskError):
        manager.add_task(FunctionTask("big", lambda: None,
                                      resources={"mem": 8}))


def test_resource_manager_accounting():
    rm = ResourceManager({"gpu": 2})
    task = FunctionTask("t", lambda: None, resources={"gpu": 2})
    assert rm.try_acquire(task)
    assert rm.available("gpu") == 0
    assert not rm.try_acquire(task)
    rm.release(task)
    assert rm.available("gpu") == 2


def test_process_task(tmp_path):
    marker = tmp_path / "out.txt"
    manager = TaskManager()
    task = manager.add_task(
        ProcessTask("touch", ["python", "-c",
                              f"open(r'{marker}', 'w').write('hi')"])
    )
    manager.run()
    assert task.state == TaskState.SUCCEEDED
    assert marker.read_text() == "hi"


def test_process_task_failure():
    manager = TaskManager()
    task = manager.add_task(
        ProcessTask("fail", ["python", "-c", "raise SystemExit(3)"])
    )
    manager.run()
    assert task.state == TaskState.FAILED


def test_observer_sees_every_terminal_state():
    seen = []
    manager = TaskManager(observer=lambda t: seen.append((t.name, t.state)))
    manager.add_task(FunctionTask("ok", lambda: None))
    bad = manager.add_task(FunctionTask("bad", lambda: 1 / 0))
    child = manager.add_task(FunctionTask("child", lambda: None))
    child.depends_on(bad)
    manager.run()
    names = {name for name, _state in seen}
    assert names == {"ok", "bad", "child"}


def test_empty_graph():
    assert TaskManager().run() == {}


def test_invalid_construction():
    with pytest.raises(TaskError):
        FunctionTask("", lambda: None)
    with pytest.raises(TaskError):
        TaskManager(num_workers=0)

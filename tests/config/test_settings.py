"""JSON configuration: overrides, includes, references, accessors
(paper §III-C, Listing 1)."""

import json

import pytest

from repro.config.settings import (
    Settings,
    SettingsError,
    apply_override,
    parse_override,
)


class TestParseOverride:
    def test_listing1_string_override(self):
        path, value = parse_override("network.router.architecture=string=my_arch")
        assert path == ["network", "router", "architecture"]
        assert value == "my_arch"

    def test_listing1_uint_override(self):
        path, value = parse_override("network.concentration=uint=16")
        assert path == ["network", "concentration"]
        assert value == 16

    def test_int_negative(self):
        assert parse_override("a=int=-5")[1] == -5

    def test_uint_rejects_negative(self):
        with pytest.raises(SettingsError):
            parse_override("a=uint=-5")

    def test_float(self):
        assert parse_override("a.b=float=0.25")[1] == 0.25

    def test_bool_variants(self):
        assert parse_override("a=bool=true")[1] is True
        assert parse_override("a=bool=FALSE")[1] is False
        assert parse_override("a=bool=1")[1] is True
        with pytest.raises(SettingsError):
            parse_override("a=bool=maybe")

    def test_json_type(self):
        assert parse_override('a=json=[1,2,3]')[1] == [1, 2, 3]
        assert parse_override('a=json={"k": 2}')[1] == {"k": 2}

    def test_value_containing_equals(self):
        # Only the first two '=' split; the value keeps the rest.
        assert parse_override("a=string=x=y")[1] == "x=y"

    def test_malformed(self):
        with pytest.raises(SettingsError):
            parse_override("novalue")
        with pytest.raises(SettingsError):
            parse_override("a=unknown_type=3")
        with pytest.raises(SettingsError):
            parse_override("=uint=3")


class TestApplyOverride:
    def test_creates_missing_dicts(self):
        root = {}
        apply_override(root, ["a", "b", "c"], 7)
        assert root == {"a": {"b": {"c": 7}}}

    def test_overwrites_existing(self):
        root = {"a": {"b": 1}}
        apply_override(root, ["a", "b"], 2)
        assert root["a"]["b"] == 2

    def test_list_indexing(self):
        root = {"apps": [{"rate": 0.1}, {"rate": 0.2}]}
        apply_override(root, ["apps", "1", "rate"], 0.9)
        assert root["apps"][1]["rate"] == 0.9

    def test_list_index_out_of_range(self):
        with pytest.raises(SettingsError):
            apply_override({"apps": []}, ["apps", "0"], 1)

    def test_descend_into_scalar_rejected(self):
        with pytest.raises(SettingsError):
            apply_override({"a": 5}, ["a", "b"], 1)


class TestIncludes:
    def test_include_expansion(self, tmp_path):
        (tmp_path / "router.json").write_text(
            json.dumps({"architecture": "input_queued"})
        )
        main = tmp_path / "main.json"
        main.write_text(
            json.dumps({"network": {"router": "$include(router.json)"}})
        )
        settings = Settings.from_file(main)
        assert (
            settings.child("network").child("router").get_str("architecture")
            == "input_queued"
        )

    def test_nested_includes(self, tmp_path):
        (tmp_path / "inner.json").write_text(json.dumps({"deep": 1}))
        (tmp_path / "outer.json").write_text(
            json.dumps({"inner": "$include(inner.json)"})
        )
        main = tmp_path / "main.json"
        main.write_text(json.dumps({"outer": "$include(outer.json)"}))
        settings = Settings.from_file(main)
        assert settings.raw()["outer"]["inner"]["deep"] == 1

    def test_include_relative_to_including_file(self, tmp_path):
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "leaf.json").write_text(json.dumps({"v": 3}))
        (sub / "mid.json").write_text(json.dumps({"leaf": "$include(leaf.json)"}))
        main = tmp_path / "main.json"
        main.write_text(json.dumps({"mid": "$include(sub/mid.json)"}))
        settings = Settings.from_file(main)
        assert settings.raw()["mid"]["leaf"]["v"] == 3

    def test_missing_include_raises(self, tmp_path):
        main = tmp_path / "main.json"
        main.write_text(json.dumps({"x": "$include(nope.json)"}))
        with pytest.raises(SettingsError):
            Settings.from_file(main)


class TestReferences:
    def test_simple_ref(self):
        settings = Settings.from_dict(
            {"shared": {"depth": 64}, "router": {"queue": "$ref(shared.depth)"}}
        )
        assert settings.raw()["router"]["queue"] == 64

    def test_ref_copies_objects(self):
        settings = Settings.from_dict(
            {"proto": {"a": 1}, "one": "$ref(proto)", "two": "$ref(proto)"}
        )
        assert settings.raw()["one"] == {"a": 1}
        # Mutating one copy must not affect the other.
        settings.raw()["one"]["a"] = 99
        assert settings.raw()["two"]["a"] == 1

    def test_chained_refs(self):
        settings = Settings.from_dict(
            {"a": 5, "b": "$ref(a)", "c": "$ref(b)"}
        )
        assert settings.raw()["c"] == 5

    def test_ref_cycle_detected(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({"a": "$ref(b)", "b": "$ref(a)"})

    def test_ref_missing_path(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({"a": "$ref(not.there)"})

    def test_ref_into_list(self):
        settings = Settings.from_dict({"xs": [10, 20], "y": "$ref(xs.1)"})
        assert settings.raw()["y"] == 20


class TestTypedAccessors:
    def test_get_required_missing(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({}).get("absent")

    def test_get_default(self):
        assert Settings.from_dict({}).get("absent", 3) == 3

    def test_get_int_rejects_bool(self):
        settings = Settings.from_dict({"flag": True})
        with pytest.raises(SettingsError):
            settings.get_int("flag")

    def test_get_uint_rejects_negative(self):
        settings = Settings.from_dict({"n": -2})
        with pytest.raises(SettingsError):
            settings.get_uint("n")

    def test_get_float_accepts_int(self):
        assert Settings.from_dict({"r": 1}).get_float("r") == 1.0

    def test_get_str_type_checked(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({"s": 5}).get_str("s")

    def test_get_bool_type_checked(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({"b": "true"}).get_bool("b")

    def test_get_int_list(self):
        assert Settings.from_dict({"xs": [1, 2]}).get_int_list("xs") == [1, 2]
        with pytest.raises(SettingsError):
            Settings.from_dict({"xs": [1, "a"]}).get_int_list("xs")

    def test_contains_and_keys(self):
        settings = Settings.from_dict({"a": 1})
        assert "a" in settings
        assert "b" not in settings
        assert list(settings.keys()) == ["a"]


class TestHierarchy:
    def test_child_block(self):
        settings = Settings.from_dict({"network": {"router": {"vcs": 2}}})
        router = settings.child("network").child("router")
        assert router.get_uint("vcs") == 2

    def test_child_missing_with_default(self):
        child = Settings.from_dict({}).child("router", default={"vcs": 1})
        assert child.get_uint("vcs") == 1

    def test_child_missing_required(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({}).child("router")

    def test_child_error_paths_include_location(self):
        settings = Settings.from_dict({"a": {"b": {}}})
        with pytest.raises(SettingsError, match="a.b.missing"):
            settings.child("a").child("b").get("missing")

    def test_child_list(self):
        settings = Settings.from_dict({"apps": [{"type": "blast"}, {"type": "pulse"}]})
        children = settings.child_list("apps")
        assert [c.get_str("type") for c in children] == ["blast", "pulse"]

    def test_child_list_rejects_scalars(self):
        with pytest.raises(SettingsError):
            Settings.from_dict({"apps": [1]}).child_list("apps")


class TestFromFileWithOverrides:
    def test_file_plus_overrides(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"network": {"concentration": 4}}))
        settings = Settings.from_file(
            path, overrides=["network.concentration=uint=16"]
        )
        assert settings.child("network").get_uint("concentration") == 16

    def test_overrides_applied_before_refs(self):
        settings = Settings.from_dict(
            {"base": 1, "derived": "$ref(base)"},
            overrides=["base=uint=9"],
        )
        assert settings.raw()["derived"] == 9

    def test_to_json_round_trip(self):
        data = {"a": {"b": [1, 2]}}
        settings = Settings.from_dict(data)
        assert json.loads(settings.to_json()) == data

    def test_from_dict_does_not_mutate_input(self):
        data = {"a": 1}
        Settings.from_dict(data, overrides=["a=uint=5"])
        assert data == {"a": 1}

"""models.load_all(): idempotency and registry completeness."""

from repro import factory, models
from repro.net.interface import Interface
from repro.net.network import Network
from repro.router.base import Router
from repro.router.congestion import CongestionSensor
from repro.routing.base import RoutingAlgorithm
from repro.workload.application import Application
from repro.workload.injection import InjectionProcess
from repro.workload.size import MessageSizeDistribution
from repro.workload.traffic import TrafficPattern


def test_load_all_idempotent():
    models.load_all()
    before = {
        base: tuple(factory.names(base))
        for base in (Network, Router, RoutingAlgorithm, TrafficPattern)
    }
    models.load_all()
    after = {
        base: tuple(factory.names(base))
        for base in (Network, Router, RoutingAlgorithm, TrafficPattern)
    }
    assert before == after


def test_all_paper_models_registered():
    models.load_all()
    assert set(factory.names(Router)) >= {
        "output_queued", "input_queued", "input_output_queued"}
    assert set(factory.names(Network)) >= {
        "torus", "folded_clos", "hyperx", "dragonfly", "parking_lot"}
    assert set(factory.names(RoutingAlgorithm)) >= {
        "torus_dimension_order", "torus_minimal_adaptive",
        "clos_deterministic", "clos_adaptive",
        "hyperx_dimension_order", "hyperx_valiant", "hyperx_ugal",
        "dragonfly_minimal", "dragonfly_valiant", "dragonfly_ugal",
        "chain"}
    assert set(factory.names(TrafficPattern)) >= {
        "uniform_random", "bit_complement", "tornado", "transpose",
        "bit_reverse", "neighbor", "random_permutation", "all_to_one",
        "uniform_to_root"}
    assert set(factory.names(Application)) >= {
        "blast", "pulse", "request_reply"}
    assert set(factory.names(MessageSizeDistribution)) >= {
        "constant", "uniform", "probability"}
    assert set(factory.names(InjectionProcess)) >= {"bernoulli", "periodic"}
    assert set(factory.names(Interface)) >= {"standard"}
    assert set(factory.names(CongestionSensor)) >= {"credit"}

"""Unit and fault-injection tests for the sharded PDES runtime.

Digest-level equivalence with single-process runs is covered by
``test_sharded_golden.py``; this module tests the machinery itself:
the conservative window protocol (no record may land inside the window
that produced it), cross-shard object reconstruction, credit
conservation under CreditSan, scope validation, and the crash path of
the process executor.
"""

from __future__ import annotations

import pytest

from repro import Settings
from repro.partition import plan_partition
from repro.partition.proxy import (
    CREDIT_RECORD,
    FLIT_RECORD,
    ProxyError,
    ShardRegistry,
)
from repro.partition.runtime import (
    PartitionRuntimeError,
    _InProcessHandle,
    run_sharded,
    validate_sharded_scope,
)

from tests.conftest import small_torus_config


def _small_config(**workload) -> dict:
    workload.setdefault("warmup_duration", 50)
    workload.setdefault("generate_duration", 150)
    return small_torus_config(**workload)


# -- window protocol ---------------------------------------------------------


def test_proxy_records_never_late():
    """Every record produced in window [C, C+L) is due at or after C+L.

    This is the conservative-synchronization invariant the whole
    runtime rests on: records are exchanged at barriers, so a record
    due *inside* its production window could never be injected in time.
    The lookahead (minimum cut-channel latency) must make this
    impossible by construction.

    The workers are driven directly and abandoned mid-run (no drain),
    which leaks a few slab handles; slab accounting tests use deltas,
    so this is harmless.
    """
    config = _small_config()
    manifest = plan_partition(Settings.from_dict(config), 2)
    lookahead = manifest["lookahead"]["global"]
    assert lookahead >= 1
    cut_sinks = [entry["sink_shard"] for entry in manifest["cut_channels"]]

    handles = [
        _InProcessHandle(config, manifest, shard, "", False)
        for shard in (0, 1)
    ]
    inboxes = [[], []]
    cursor = 0
    flit_records = credit_records = 0
    heads_seen = set()
    for _ in range(60):
        end = cursor + lookahead
        produced = []
        for handle in handles:
            reply = handle.window(end, inboxes[handle.shard_id], [], None)
            inboxes[handle.shard_id] = []
            produced.extend(reply["records"])
        for record in produced:
            kind, cut_index, due = record[0], record[1], record[2]
            assert due >= end, (
                f"record {record!r} produced in window ending at {end} "
                f"is already late"
            )
            if kind == FLIT_RECORD:
                flit_records += 1
                gid, index = record[5], record[6]
                if record[7] is not None:
                    heads_seen.add(gid)
                else:
                    # Wormhole order across the cut: a body flit only
                    # ever follows its packet's head.
                    assert gid in heads_seen, (
                        f"body flit of g{gid} crossed before its head"
                    )
            else:
                assert kind == CREDIT_RECORD
                credit_records += 1
            inboxes[cut_sinks[cut_index]].append(record)
        cursor = end
    assert flit_records > 0, "no flits crossed the cut; test is vacuous"
    assert credit_records > 0, "no credits crossed the cut"


def test_registry_rejects_body_before_head():
    registry = ShardRegistry()
    body = (FLIT_RECORD, 0, 10, 0, 8, 42, 1, None)
    with pytest.raises(ProxyError, match="wormhole"):
        registry.materialize_flit(body)


# -- sanitized sharded runs --------------------------------------------------


def test_credit_conservation_sharded():
    """CreditSan holds on both shards with proxied cut channels.

    Cut links are excluded from per-link credit tracking (the loop
    closes across processes); conservation there is covered by the
    coordinator's record-count check plus each worker's egress credit
    occupancy check at finish.
    """
    results = run_sharded(_small_config(), k=2, sanitize="credit")
    assert results.drained
    assert results.records_exchanged > 0
    for report in results.reports:
        # Violations raise immediately (the worker wraps them in a
        # PartitionRuntimeError); a clean return with nonzero checks
        # means conservation held on every non-cut link.
        credit = report["sanitizers"]["credit"]
        assert credit["checks"] > 0
        assert credit["links"] > 0


# -- scope validation --------------------------------------------------------


def test_scope_rejects_unsupported_application_type():
    config = _small_config()
    config["workload"]["applications"][0]["type"] = "stencil"
    with pytest.raises(PartitionRuntimeError, match="time-driven"):
        validate_sharded_scope(config)


def test_scope_rejects_auto_warmup():
    config = _small_config(warmup_mode="auto")
    with pytest.raises(PartitionRuntimeError, match="warmup_mode"):
        validate_sharded_scope(config)


def test_scope_rejects_hop_adaptive_vc_selection():
    config = _small_config()
    config["network"]["routing"]["algorithm"] = "dragonfly_ugal"
    with pytest.raises(PartitionRuntimeError, match="hop_count"):
        validate_sharded_scope(config)


def test_scope_rejects_progress_monitor():
    config = _small_config()
    config["simulator"]["monitor"] = {"period": 100}
    with pytest.raises(PartitionRuntimeError, match="monitor"):
        validate_sharded_scope(config)


def test_scope_rejects_flit_sanitizer():
    with pytest.raises(PartitionRuntimeError, match="flit"):
        validate_sharded_scope(_small_config(), sanitize="flit")


def test_run_sharded_rejects_partial_worker_count():
    with pytest.raises(PartitionRuntimeError, match="shard_workers"):
        run_sharded(_small_config(), k=2, shard_workers=1)


# -- process executor faults -------------------------------------------------


def test_worker_crash_surfaces_clean_error():
    """A dying worker process raises a shard-naming error, not a hang.

    The fault injection makes shard 1 ``os._exit`` inside its second
    window; the coordinator's receive loop waits on the process
    sentinel alongside the pipe, so the death is observed immediately.
    """
    with pytest.raises(PartitionRuntimeError, match=r"shard 1.*died"):
        run_sharded(_small_config(), k=2, shard_workers=2, _crash_shard=1)


def test_worker_exception_names_shard_in_process():
    with pytest.raises(PartitionRuntimeError, match=r"shard 1"):
        run_sharded(_small_config(), k=2, shard_workers=0, _crash_shard=1)

"""The P-rules: every mutation of a sound manifest must be caught.

The manifest rules (P001..P005) are exercised by planning a known-good
manifest for a builtin config, tampering with one aspect, and asserting
that exactly the right rule fires.  The shard-isolation AST rules
(P006..P008) are exercised DataflowScan-style: small source snippets,
one hazard each, checked for the expected rule id.
"""

from __future__ import annotations

import copy
import textwrap

import pytest

from repro.config.settings import Settings
from repro.configs import blast_pulse_config
from repro.lint import lint_partition, lint_sources

# -- manifest rules (P001..P005) ---------------------------------------------


@pytest.fixture(scope="module")
def settings():
    return Settings.from_dict(blast_pulse_config())


@pytest.fixture(scope="module")
def clean_manifest(settings):
    report, manifest = lint_partition(settings, k=2)
    assert not report.has_errors()
    assert manifest is not None
    return manifest


def _verify(settings, manifest, **kwargs):
    report, _ = lint_partition(settings, manifest=manifest, **kwargs)
    return report


def _error_ids(report):
    return sorted({f.rule_id for f in report.errors})


def test_planned_manifest_verifies_clean(settings, clean_manifest):
    report = _verify(settings, clean_manifest)
    assert not report.has_errors()


def test_p001_zero_latency_cut(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["cut_channels"][0]["latency"] = 0
    assert "P001" in _error_ids(_verify(settings, manifest))


def test_p001_latency_disagrees_with_network(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["cut_channels"][0]["latency"] += 1
    report = _verify(settings, manifest)
    assert "P001" in _error_ids(report)
    assert "post-override" in "".join(f.message for f in report.errors)


def test_p002_unknown_cut_channel(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["cut_channels"][0]["name"] = "no_such_channel"
    assert "P002" in _error_ids(_verify(settings, manifest))


def test_p002_wrong_cut_kind(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    entry = manifest["cut_channels"][0]
    entry["kind"] = "credit" if entry["kind"] == "flit" else "flit"
    assert "P002" in _error_ids(_verify(settings, manifest))


def test_p002_undeclared_crossing(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    del manifest["cut_channels"][0]
    report = _verify(settings, manifest)
    assert "P002" in _error_ids(report)
    assert "not declared" in "".join(f.message for f in report.errors)


def test_p002_declared_cut_does_not_cross(settings, clean_manifest):
    # Merge every component into shard 0 but keep shard 1's (now empty)
    # entry and the stale cut declarations.
    manifest = copy.deepcopy(clean_manifest)
    moved = manifest["shards"][1]["components"]
    manifest["shards"][0]["components"] += moved
    manifest["shards"][1]["components"] = []
    report = _verify(settings, manifest)
    assert "P002" in _error_ids(report)
    assert any("do not actually cross" in f.message for f in report.errors)


def test_p003_zero_lookahead(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["lookahead"]["global"] = 0
    assert "P003" in _error_ids(_verify(settings, manifest))


def test_p003_overstated_lookahead(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["lookahead"]["global"] = 10_000
    report = _verify(settings, manifest)
    assert "P003" in _error_ids(report)
    assert "exceeds" in "".join(f.message for f in report.errors)


def test_p003_overstated_per_shard_lookahead(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["lookahead"]["per_shard"]["0"] = 10_000
    assert "P003" in _error_ids(_verify(settings, manifest))


def test_p003_missing_per_shard_lookahead(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    del manifest["lookahead"]["per_shard"]["1"]
    assert "P003" in _error_ids(_verify(settings, manifest))


def test_p003_threshold_is_configurable(settings, clean_manifest):
    # The planned lookahead is sound at threshold 1 but a runtime
    # needing a wider window can demand more.
    huge = clean_manifest["lookahead"]["global"] + 1
    report = _verify(
        settings, clean_manifest, lookahead_threshold=huge
    )
    assert "P003" in _error_ids(report)


def test_p004_imbalance_and_empty_shard_warn(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    moved = manifest["shards"][1]["components"]
    manifest["shards"][0]["components"] += moved
    manifest["shards"][0]["weight"] += manifest["shards"][1]["weight"]
    manifest["shards"][1]["components"] = []
    manifest["shards"][1]["weight"] = 0
    report = _verify(settings, manifest)
    p004 = [f for f in report.warnings if f.rule_id == "P004"]
    messages = "".join(f.message for f in p004)
    assert "empty" in messages
    assert "heaviest" in messages


def test_p004_weight_disagreement_warns(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["shards"][0]["weight"] += 3
    report = _verify(settings, manifest)
    assert any(f.rule_id == "P004" for f in report.warnings)


def test_p005_missing_component(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    del manifest["shards"][0]["components"][0]
    report = _verify(settings, manifest)
    assert "P005" in _error_ids(report)
    assert any("no shard" in f.message for f in report.errors)


def test_p005_duplicated_component(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    name = manifest["shards"][0]["components"][0]
    manifest["shards"][1]["components"].append(name)
    report = _verify(settings, manifest)
    assert "P005" in _error_ids(report)
    assert any("multiple shards" in f.message for f in report.errors)


def test_p005_unknown_component(settings, clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["shards"][0]["components"].append("phantom_router")
    report = _verify(settings, manifest)
    assert "P005" in _error_ids(report)
    assert any("unknown" in f.message for f in report.errors)


def test_p005_structural_errors_gate_semantic_rules(settings,
                                                    clean_manifest):
    manifest = copy.deepcopy(clean_manifest)
    manifest["version"] = 99
    manifest["cut_channels"][0]["latency"] = 0  # would be P001
    report = _verify(settings, manifest)
    assert _error_ids(report) == ["P005"]


def test_p005_unplannable_k(settings):
    report, manifest = lint_partition(settings, k=0)
    assert "P005" in _error_ids(report)
    assert manifest is None


def test_no_partition_request_runs_no_p_rules(settings):
    from repro.lint import GRAPH_LAYER, PARTITION_LAYER, LintContext, run_rules

    ctx = LintContext(settings=settings)
    report = run_rules(ctx, [GRAPH_LAYER, PARTITION_LAYER])
    assert not any(f.rule_id.startswith("P") for f in report.findings)


# -- shard-isolation AST rules (P006..P008) ----------------------------------

HAZARDS = {
    "P006_sink_reach": """
        class Router:
            def route(self, flit, port):
                depth = self._flit_out[port].sink.queue_depth(0)
                return depth
        """,
    "P006_peer_attribute": """
        class Monitor:
            def sample(self):
                return self.peer.injected_flits
        """,
    "P006_registry_reach": """
        class Oracle:
            def occupancy(self, j):
                return self.network.routers[j].input_occupancy(0, 0)
        """,
    "P007_global_statement": """
        COUNT = 0

        class Counter:
            def bump(self):
                global COUNT
                COUNT += 1
        """,
    "P007_container_mutation": """
        SEEN = []

        class Tracker:
            def track(self, flit):
                SEEN.append(flit.id)
        """,
    "P007_subscript_write": """
        TABLE = {}

        class Cache:
            def put(self, key, value):
                TABLE[key] = value
        """,
    "P008_positional_handler": """
        class Injector:
            def kick(self, peer):
                self.simulator.call_at(10, peer.receive)
        """,
    "P008_keyword_handler": """
        class Injector:
            def kick(self, peer):
                self.simulator.call_at(10, handler=peer.receive)
        """,
    "P008_schedule_helper": """
        class Injector:
            def kick(self):
                self.schedule(self.sink_interface.wake, delay=1)
        """,
}

CLEAN = {
    "self_handler_is_fine": """
        class Router:
            def arm(self):
                self.schedule(self._deliver, delay=1)
                self.simulator.call_at(10, self._fire)
        """,
    "construction_wiring_is_fine": """
        class Network:
            def __init__(self):
                self.routers[0].attach(self.routers[1].port(0))

            def _build(self):
                for j in range(4):
                    self.routers[j].finalize_ports()
        """,
    "local_mutable_state_is_fine": """
        class Tracker:
            def track(self, flit):
                self.seen.append(flit.id)
                local = {}
                local[flit.id] = 1
        """,
    "module_constant_read_is_fine": """
        LIMITS = {"depth": 4}

        class Router:
            def limit(self):
                return LIMITS["depth"]
        """,
}


def _scan_snippet(tmp_path, name, source):
    path = tmp_path / f"{name}.py"
    path.write_text(textwrap.dedent(source))
    report = lint_sources([str(path)], layers=["partition"])
    return {f.rule_id for f in report.findings}


@pytest.mark.parametrize("name", sorted(HAZARDS))
def test_hazard_snippets_fire_expected_rule(tmp_path, name):
    expected = name.split("_")[0]
    assert expected in _scan_snippet(tmp_path, name, HAZARDS[name])


@pytest.mark.parametrize("name", sorted(CLEAN))
def test_clean_snippets_stay_silent(tmp_path, name):
    assert _scan_snippet(tmp_path, name, CLEAN[name]) == set()


def test_isolation_findings_are_warnings_with_locations(tmp_path):
    path = tmp_path / "hazard.py"
    path.write_text(textwrap.dedent(HAZARDS["P006_sink_reach"]))
    report = lint_sources([str(path)], layers=["partition"])
    assert report.findings and not report.has_errors()
    for finding in report.findings:
        assert finding.location.startswith(str(path))
        assert ":" in finding.location

"""The partition planner: goldens, invariants, and determinism.

Golden values pin the planner's exact output on the builtin configs at
k in {2, 4}.  They are not sacred -- a planner improvement may move
them -- but a move must be noticed and re-verified (zero P-errors,
lookahead >= 1), not slipped in.
"""

from __future__ import annotations

import pytest

from repro.config.settings import Settings
from repro.configs import (
    blast_pulse_config,
    credit_accounting_config,
    flow_control_config,
    latent_congestion_config,
)
from repro.lint.graph import GraphAnalysis
from repro.partition import (
    ComponentGraph,
    PartitionError,
    build_manifest,
    plan,
    plan_partition,
    to_canonical_json,
)


def _graph(config) -> ComponentGraph:
    analysis = GraphAnalysis(Settings.from_dict(config), max_pairs=0)
    assert analysis.network is not None, analysis.construction_error
    return ComponentGraph.from_analysis(analysis)


@pytest.fixture(scope="module")
def torus_graph():
    return _graph(blast_pulse_config())


# -- goldens -----------------------------------------------------------------

#: (config builder, k) -> (shard sizes, shard weights, cut channel
#: count, global lookahead).
GOLDENS = {
    ("blast_pulse", 2): ([16, 16], [48, 48], 48, 5),
    ("blast_pulse", 4): ([8, 8, 8, 8], [24, 24, 24, 24], 80, 5),
    ("latent_congestion", 2): ([42, 70], [176, 208], 160, 50),
    ("latent_congestion", 4): ([28, 28, 26, 30], [105, 105, 88, 86],
                               216, 50),
    ("credit_accounting", 2): ([20, 20], [60, 60], 64, 50),
    ("credit_accounting", 4): ([10, 10, 10, 10], [30, 30, 30, 30],
                               96, 50),
    ("flow_control", 2): ([60, 68], [240, 272], 232, 5),
    ("flow_control", 4): ([32, 30, 34, 32], [128, 120, 136, 128],
                          380, 5),
}

_BUILDERS = {
    "blast_pulse": blast_pulse_config,
    "latent_congestion": latent_congestion_config,
    "credit_accounting": credit_accounting_config,
    "flow_control": flow_control_config,
}


@pytest.mark.parametrize("name,k", sorted(GOLDENS))
def test_builtin_goldens(name, k):
    sizes, weights, cut, lookahead = GOLDENS[(name, k)]
    manifest = plan_partition(Settings.from_dict(_BUILDERS[name]()), k)
    assert [len(s["components"]) for s in manifest["shards"]] == sizes
    assert [s["weight"] for s in manifest["shards"]] == weights
    assert len(manifest["cut_channels"]) == cut
    assert manifest["lookahead"]["global"] == lookahead


# -- invariants --------------------------------------------------------------

@pytest.mark.parametrize("k", [1, 2, 3, 4, 7])
def test_assignment_partitions_component_set_exactly(torus_graph, k):
    assignment = plan(torus_graph, k)
    assert set(assignment) == set(torus_graph.components)
    assert set(assignment.values()) <= set(range(k))


@pytest.mark.parametrize("k", [2, 4])
def test_cut_latencies_bound_the_lookahead(torus_graph, k):
    assignment = plan(torus_graph, k)
    manifest = build_manifest(torus_graph, assignment, k)
    lookahead = manifest["lookahead"]["global"]
    assert lookahead >= 1
    for entry in manifest["cut_channels"]:
        assert entry["latency"] >= lookahead
        assert entry["source_shard"] != entry["sink_shard"]
    for shard_id, value in manifest["lookahead"]["per_shard"].items():
        inbound = [
            e["latency"] for e in manifest["cut_channels"]
            if e["sink_shard"] == int(shard_id)
        ]
        assert value == (min(inbound) if inbound else None)


def test_k_equals_one_has_no_cut(torus_graph):
    assignment = plan(torus_graph, 1)
    assert set(assignment.values()) == {0}
    manifest = build_manifest(torus_graph, assignment, 1)
    assert manifest["cut_channels"] == []
    assert manifest["lookahead"]["global"] is None


def test_k_at_least_component_count_is_one_per_shard(torus_graph):
    n = len(torus_graph.components)
    assignment = plan(torus_graph, n)
    assert sorted(assignment.values()) == list(range(n))


@pytest.mark.parametrize("k", [0, -1])
def test_bad_k_raises(torus_graph, k):
    with pytest.raises(PartitionError):
        plan(torus_graph, k)


def test_bad_tolerance_raises(torus_graph):
    with pytest.raises(PartitionError):
        plan(torus_graph, 2, tolerance=0.5)


def test_empty_graph_raises():
    with pytest.raises(PartitionError):
        plan(ComponentGraph(), 2)


# -- determinism -------------------------------------------------------------

@pytest.mark.parametrize("k", [2, 4])
def test_manifests_are_byte_identical_across_runs(k):
    settings_a = Settings.from_dict(blast_pulse_config())
    settings_b = Settings.from_dict(blast_pulse_config())
    first = to_canonical_json(plan_partition(settings_a, k))
    second = to_canonical_json(plan_partition(settings_b, k))
    assert first == second


# -- the latency-override regression (lint/graph.py bugfix) ------------------

def test_channel_records_report_post_override_latency():
    settings = Settings.from_dict(
        blast_pulse_config(),
        overrides=["network.channel_latency=uint=7"],
    )
    analysis = GraphAnalysis(settings, max_pairs=0)
    assert analysis.network is not None
    live = {
        channel.full_name: channel.latency
        for device in (
            list(analysis.network.routers)
            + list(analysis.network.interfaces)
        )
        for channel in (
            list(device._flit_out) + list(device._credit_out)
        )
        if channel is not None
    }
    router_to_router = [
        record for record in analysis.channels
        if record.kind == "flit"
        and "interface" not in record.source
        and "interface" not in record.sink
    ]
    assert router_to_router
    for record in router_to_router:
        assert record.latency == 7
    for record in analysis.channels:
        assert record.latency == live[record.name]


def test_overridden_latency_flows_into_cut_channels():
    settings = Settings.from_dict(
        blast_pulse_config(),
        overrides=["network.channel_latency=uint=9"],
    )
    manifest = plan_partition(settings, 2)
    latencies = {e["latency"] for e in manifest["cut_channels"]}
    assert latencies == {9}
    assert manifest["lookahead"]["global"] == 9

"""Golden equivalence: sharded PDES execution vs single-process.

The sharded runtime promises *exact* reproduction: the same seed and
config deliver every flit on the same channel at the same (tick,
epsilon) whether the network runs in one process or split across k
shard workers.  DetSan's order-commutative delivery digest -- merged
across shards with :func:`merge_delivery_digests` -- is the witness;
the merged message log is compared record-for-record on top.

Covered on torus/IQ and folded-Clos/OQ (disjoint router send paths),
with a mixed blast+pulse workload (exercises the coordinator's static
stop schedule and delivery-driven kill replay), and once in spawn mode
(real worker processes, pickled record streams).
"""

from __future__ import annotations

import itertools

import pytest

import repro.net.message as message_mod
import repro.net.packet as packet_mod
from repro import Settings, Simulation
from repro.configs import latent_congestion_config
from repro.net.packet import preserve_packet_ids
from repro.partition.runtime import run_sharded
from repro.sanitize import attach_sanitizers

from tests.conftest import small_torus_config


def _torus_config() -> dict:
    return small_torus_config(warmup_duration=100, generate_duration=400)


def _clos_config() -> dict:
    return latent_congestion_config(
        injection_rate=0.15, warmup=50, window=150, half_radix=2
    )


def _blast_pulse_config() -> dict:
    config = small_torus_config(
        injection_rate=0.15, warmup_duration=100, generate_duration=300
    )
    config["workload"]["applications"].append({
        "type": "pulse",
        "injection_rate": 0.4,
        "delay": 150,
        "duration": 120,
        "traffic": {"type": "uniform_random"},
        "message_size": {"type": "constant", "size": 4},
    })
    return config


def _single_process(config: dict, max_time: int) -> dict:
    """Reference run; id counters forced to zero like a fresh process.

    Shard workers count message/packet ids from zero (spawn mode
    trivially, in-process mode via the id scope), and packet ids feed
    routing decisions, so the baseline must too.
    """
    with preserve_packet_ids():
        packet_mod._global_packet_ids = itertools.count(0)
        message_mod._global_message_ids = itertools.count(0)
        simulation = Simulation(Settings.from_dict(config))
        with attach_sanitizers(simulation, "det") as suite:
            results = simulation.run(max_time=max_time)
            suite.finish()
            det = suite.report()["det"]
        records = sorted(
            (r.to_dict() for r in simulation.message_log.records),
            key=lambda d: (d["delivered"], d["id"]),
        )
        return {
            "digest": det["delivery_digest"],
            "deliveries": det["deliveries"],
            "drained": results.drained,
            "records": records,
        }


@pytest.mark.parametrize(
    "name,config,max_time",
    [
        ("torus_iq", _torus_config(), 50_000),
        ("folded_clos_oq", _clos_config(), 2_000),
        ("blast_pulse", _blast_pulse_config(), 50_000),
    ],
)
def test_sharded_matches_single_process(name, config, max_time):
    base = _single_process(config, max_time)
    assert base["drained"] and base["deliveries"] > 0

    config.setdefault("simulator", {})["max_time"] = max_time
    results = run_sharded(config, k=2, sanitize="det")
    assert results.drained, f"{name}: sharded run failed to drain"
    assert results.records_exchanged > 0, f"{name}: no cut traffic"
    assert results.delivery_digest == base["digest"], (
        f"{name}: sharded delivery digest diverged"
    )
    merged = [r.to_dict() for r in results.records]
    assert merged == base["records"], f"{name}: message logs diverged"


def test_sharded_spawn_matches_single_process():
    config = _torus_config()
    base = _single_process(config, 50_000)
    config.setdefault("simulator", {})["max_time"] = 50_000
    results = run_sharded(config, k=2, shard_workers=2, sanitize="det")
    assert results.mode == "spawn"
    assert results.drained
    assert results.delivery_digest == base["digest"]
    assert len(results.records) == len(base["records"])


def test_custom_registered_app_runs_sharded():
    """Scope widening: a user application earns sharding by analysis.

    ``steady_burst`` is registered at test time under a name no
    runtime list has ever heard of; the old supported-names check
    (``kind not in ("blast", "pulse")``) rejected exactly this.  The
    verdict-driven scope admits it -- the analyzer proves its handshake
    time-driven and its delivery path passive -- and the sharded run
    must then be digest-identical to single-process, like any builtin.
    """
    from repro import factory
    from repro.workload.application import Application
    from repro.workload.pulse import PulseApplication

    if "steady_burst" not in factory.names(Application):
        @factory.register(Application, "steady_burst")
        class SteadyBurstApplication(PulseApplication):
            """A pulse with a louder name and a fixed extra delay."""

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.delay += 25

            @classmethod
            def shard_schedule(cls, app_config):
                schedule = PulseApplication.shard_schedule(app_config)
                if schedule is None or float(
                        app_config.get("injection_rate", 0.0)) <= 0.0:
                    return schedule
                ready, complete = schedule
                return ready, complete + 25

    config = small_torus_config(
        injection_rate=0.15, warmup_duration=100, generate_duration=300
    )
    config["workload"]["applications"].append({
        "type": "steady_burst",
        "injection_rate": 0.4,
        "delay": 125,
        "duration": 120,
        "traffic": {"type": "uniform_random"},
        "message_size": {"type": "constant", "size": 4},
    })
    base = _single_process(config, 50_000)
    assert base["drained"] and base["deliveries"] > 0

    config.setdefault("simulator", {})["max_time"] = 50_000
    results = run_sharded(config, k=2, sanitize="det")
    assert results.drained
    assert results.records_exchanged > 0
    assert results.delivery_digest == base["digest"]
    merged = [r.to_dict() for r in results.records]
    assert merged == base["records"]


def test_sharded_summary_shape():
    config = _torus_config()
    results = run_sharded(config, k=2)
    summary = results.summary()
    partition = summary["partition"]
    assert partition["k"] == 2
    assert partition["mode"] == "in-process"
    assert partition["windows"] == results.windows
    assert len(partition["shards"]) == 2
    delivered = sum(s["messages_delivered"] for s in partition["shards"])
    assert delivered == len(results.records)

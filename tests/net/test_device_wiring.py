"""PortedDevice wiring errors and invariants."""

import pytest

from repro.core.simulator import Simulator
from repro.net.channel import Channel, CreditChannel
from repro.net.device import PortedDevice, WiringError
from repro.net.message import Message


class BareDevice(PortedDevice):
    def __init__(self, simulator, name, num_ports=2, num_vcs=2):
        super().__init__(simulator, name, None, num_ports, num_vcs)
        self.received = []

    def input_buffer_capacities(self, port):
        return [4] * self.num_vcs

    def receive_flit(self, port, flit):
        self.received.append((port, flit))

    def receive_credit(self, port, credit):
        pass


@pytest.fixture
def sim():
    return Simulator()


def make_flit():
    return Message(0, 0, 1, 1).packetize(1)[0].flits[0]


def test_double_wiring_rejected(sim):
    device = BareDevice(sim, "dev")
    channel = Channel(sim, "ch", None, latency=1)
    device.set_flit_channel_out(0, channel)
    with pytest.raises(WiringError):
        device.set_flit_channel_out(0, channel)


def test_double_credit_channel_rejected(sim):
    device = BareDevice(sim, "dev")
    channel = CreditChannel(sim, "cc", None, latency=1)
    device.set_credit_channel_out(0, channel)
    with pytest.raises(WiringError):
        device.set_credit_channel_out(0, channel)


def test_double_credit_init_rejected(sim):
    device = BareDevice(sim, "dev")
    device.init_output_credits(0, [4, 4])
    with pytest.raises(WiringError):
        device.init_output_credits(0, [4, 4])


def test_send_on_unwired_port_rejected(sim):
    device = BareDevice(sim, "dev")
    with pytest.raises(WiringError):
        device.output_channel(0)
    with pytest.raises(WiringError):
        device.send_credit(0, 0)
    device.init_output_credits(0, [1, 1])
    with pytest.raises(WiringError):
        device.send_flit(0, make_flit())


def test_send_flit_consumes_credit(sim):
    source = BareDevice(sim, "src")
    sink = BareDevice(sim, "snk")
    channel = Channel(sim, "ch", None, latency=1)
    source.set_flit_channel_out(0, channel)
    channel.connect_sink(sink, 0)
    source.init_output_credits(0, [1, 1])
    flit = make_flit()
    flit.vc = 0

    def go(event):
        source.send_flit(0, flit)
        assert source.output_credit_tracker(0).available(0) == 0

    sim.call_at(0, go, epsilon=1)
    sim.run()
    assert sink.received


def test_port_is_wired(sim):
    device = BareDevice(sim, "dev")
    assert not device.port_is_wired(0)
    device.set_flit_channel_out(0, Channel(sim, "ch", None, latency=1))
    assert device.port_is_wired(0)


def test_construction_validation(sim):
    with pytest.raises(ValueError):
        BareDevice(sim, "a", num_ports=0)
    with pytest.raises(ValueError):
        BareDevice(sim, "b", num_vcs=0)

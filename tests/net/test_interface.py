"""Interfaces: packetization, injection pacing, reassembly, §IV-D
error detection."""

import pytest

from repro.core.clock import Clock
from repro.core.simulator import Simulator
from repro.config.settings import Settings
from repro.net.channel import Channel, CreditChannel
from repro.net.device import PortedDevice
from repro.net.interface import InterfaceError, StandardInterface
from repro.net.message import Message
from repro.net.network import wire


from repro.core.component import Component

_stub_count = [0]


class LoopNetworkStub(Component):
    """Just enough of a Network for wire(): simulator + link counter."""

    def __init__(self, simulator):
        _stub_count[0] += 1
        super().__init__(simulator, f"netstub{_stub_count[0]}", None)
        self._links = 0
        self.flit_channels = []

    def _next_link_index(self):
        self._links += 1
        return self._links - 1


def build_pair(sim, latency=2, num_vcs=2, max_packet=4):
    """Two interfaces wired back to back (0 <-> 1)."""
    clock = Clock(sim, period=1)
    settings = Settings.from_dict({"max_packet_size": max_packet})
    a = StandardInterface(sim, "ifaceA", None, 0, num_vcs, settings, clock, [0])
    b = StandardInterface(sim, "ifaceB", None, 1, num_vcs, settings, clock, [0])
    stub = LoopNetworkStub(sim)
    wire(stub, a, 0, b, 0, latency, 1)
    return a, b


@pytest.fixture
def sim():
    return Simulator()


def test_single_message_delivery(sim):
    a, b = build_pair(sim)
    delivered = []
    b.message_delivered_listeners.append(delivered.append)
    message = Message(0, 0, 1, 3)
    sim.call_at(0, lambda e: a.send_message(message))
    sim.run()
    assert delivered == [message]
    assert message.delivered_tick is not None
    assert b.flits_ejected == 3
    assert a.flits_injected == 3


def test_message_segmented_into_packets(sim):
    a, b = build_pair(sim, max_packet=4)
    delivered = []
    b.message_delivered_listeners.append(delivered.append)
    message = Message(0, 0, 1, 10)
    sim.call_at(0, lambda e: a.send_message(message))
    sim.run()
    assert [p.num_flits for p in message.packets] == [4, 4, 2]
    assert delivered == [message]


def test_injection_respects_channel_rate(sim):
    a, b = build_pair(sim, latency=1)
    message = Message(0, 0, 1, 5)
    sim.call_at(0, lambda e: a.send_message(message))
    sim.run()
    # One flit per cycle: 5 flits need >= 5 cycles of wire time.
    receive_ticks = [f.receive_tick for p in message.packets for f in p.flits]
    assert sorted(receive_ticks) == receive_ticks
    assert receive_ticks[-1] - receive_ticks[0] == 4


def test_packet_delivered_listener(sim):
    a, b = build_pair(sim, max_packet=2)
    packets = []
    b.packet_delivered_listeners.append(packets.append)
    message = Message(0, 0, 1, 4)
    sim.call_at(0, lambda e: a.send_message(message))
    sim.run()
    assert len(packets) == 2


def test_wrong_source_rejected(sim):
    a, _b = build_pair(sim)
    message = Message(0, 5, 1, 1)  # source is not interface 0
    with pytest.raises(InterfaceError):
        a.send_message(message)


def test_wrong_destination_detected(sim):
    """§IV-D: every flit is checked to arrive at the right destination."""
    a, b = build_pair(sim)
    message = Message(0, 0, 7, 1)  # destination 7, but wired to 1
    sim.call_at(0, lambda e: a.send_message(message))
    with pytest.raises(InterfaceError):
        sim.run()


def test_multiple_messages_fifo(sim):
    a, b = build_pair(sim)
    delivered = []
    b.message_delivered_listeners.append(delivered.append)
    first = Message(0, 0, 1, 2)
    second = Message(0, 0, 1, 2)

    def send(event):
        a.send_message(first)
        a.send_message(second)

    sim.call_at(0, send)
    sim.run()
    assert delivered == [first, second]


def test_pending_flits(sim):
    a, _b = build_pair(sim)
    counts = []

    def send(event):
        a.send_message(Message(0, 0, 1, 6))
        counts.append(a.pending_flits())

    sim.call_at(0, send)
    sim.run()
    assert counts == [6]
    assert a.pending_flits() == 0


def test_round_robin_over_injection_vcs(sim):
    clock = Clock(sim, period=1)
    settings = Settings.from_dict({"max_packet_size": 2})
    a = StandardInterface(sim, "a", None, 0, 4, settings, clock, [0, 2])
    b = StandardInterface(sim, "b", None, 1, 4, settings, clock, [0, 2])
    wire(LoopNetworkStub(sim), a, 0, b, 0, 1, 1)
    msg = Message(0, 0, 1, 8)  # four packets
    sim.call_at(0, lambda e: a.send_message(msg))
    sim.run()
    vcs = [p.routing_state["injection_vc"] for p in msg.packets]
    assert vcs == [0, 2, 0, 2]


def test_injection_vc_out_of_range_rejected(sim):
    clock = Clock(sim, period=1)
    settings = Settings.from_dict({})
    with pytest.raises(InterfaceError):
        StandardInterface(sim, "a", None, 0, 2, settings, clock, [5])


def test_credit_blocking_limits_inflight(sim):
    """With a tiny downstream buffer and long latency, the sender must
    stall on credits rather than overrun."""
    clock = Clock(sim, period=1)
    settings = Settings.from_dict({"max_packet_size": 16,
                                   "ejection_buffer_size": 2})
    a = StandardInterface(sim, "a", None, 0, 1, settings, clock, [0])
    b = StandardInterface(sim, "b", None, 1, 1, settings, clock, [0])
    wire(LoopNetworkStub(sim), a, 0, b, 0, 10, 1)
    msg = Message(0, 0, 1, 12)
    sim.call_at(0, lambda e: a.send_message(msg))
    sim.run()  # would raise BufferOverrun or Credit errors if broken
    assert b.flits_ejected == 12


def test_flit_timestamps(sim):
    a, b = build_pair(sim, latency=3)
    msg = Message(0, 0, 1, 2)
    sim.call_at(5, lambda e: a.send_message(msg))
    sim.run()
    head = msg.packets[0].flits[0]
    assert head.send_tick is not None
    assert head.receive_tick == head.send_tick + 3

"""Channels: latency, pacing, credit return path."""

import pytest

from repro.core.simulator import Simulator
from repro.net.channel import Channel, ChannelError, CreditChannel
from repro.net.credit import Credit
from repro.net.device import PortedDevice
from repro.net.message import Message


class SinkDevice(PortedDevice):
    """Records everything it receives, with arrival ticks."""

    def __init__(self, simulator, name):
        super().__init__(simulator, name, None, num_ports=1, num_vcs=2)
        self.flits = []
        self.credits = []

    def input_buffer_capacities(self, port):
        return [8] * self.num_vcs

    def receive_flit(self, port, flit):
        self.flits.append((self.simulator.tick, port, flit))

    def receive_credit(self, port, credit):
        self.credits.append((self.simulator.tick, port, credit.vc))


def make_flit():
    return Message(0, 0, 1, 1).packetize(1)[0].flits[0]


@pytest.fixture
def sim():
    return Simulator()


def test_flit_arrives_after_latency(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=7)
    channel.connect_sink(sink, 0)
    flit = make_flit()
    sim.call_at(10, lambda e: channel.send_flit(flit))
    sim.run()
    assert sink.flits == [(17, 0, flit)]


def test_one_flit_per_cycle_pacing(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=3, period=1)
    channel.connect_sink(sink, 0)

    def send_two(event):
        channel.send_flit(make_flit())
        assert not channel.can_send()
        with pytest.raises(ChannelError):
            channel.send_flit(make_flit())

    sim.call_at(5, send_two)
    sim.run()
    assert len(sink.flits) == 1


def test_pacing_with_period(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=2, period=4)
    channel.connect_sink(sink, 0)

    def sender(event):
        if channel.can_send():
            channel.send_flit(make_flit())
        if sim.tick < 12:
            sim.call_at(sim.tick + 1, sender)

    sim.call_at(0, sender)
    sim.run()
    # Sends at 0, 4, 8, 12 -> arrivals at 2, 6, 10, 14.
    assert [t for t, _p, _f in sink.flits] == [2, 6, 10, 14]


def test_next_send_tick(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=1, period=3)
    channel.connect_sink(sink, 0)

    def check(event):
        assert channel.next_send_tick() == 5
        channel.send_flit(make_flit())
        assert channel.next_send_tick() == 8

    sim.call_at(5, check)
    sim.run()


def test_send_without_sink_raises(sim):
    channel = Channel(sim, "ch", None, latency=1)
    sim.call_at(1, lambda e: channel.send_flit(make_flit()))
    with pytest.raises(ChannelError):
        sim.run()


def test_double_sink_rejected(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=1)
    channel.connect_sink(sink, 0)
    with pytest.raises(ChannelError):
        channel.connect_sink(sink, 0)


def test_invalid_latency_and_period(sim):
    with pytest.raises(ValueError):
        Channel(sim, "a", None, latency=0)
    with pytest.raises(ValueError):
        Channel(sim, "b", None, latency=1, period=0)
    with pytest.raises(ValueError):
        CreditChannel(sim, "c", None, latency=0)


def test_utilization(sim):
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=1, period=1)
    channel.connect_sink(sink, 0)

    def sender(event):
        channel.send_flit(make_flit())
        if sim.tick < 4:
            sim.call_at(sim.tick + 1, sender)

    sim.call_at(0, sender)
    sim.run()
    assert channel.flits_carried == 5
    assert channel.utilization(10) == 0.5


def test_credit_channel_latency_no_pacing(sim):
    sink = SinkDevice(sim, "sink")
    channel = CreditChannel(sim, "cc", None, latency=4)
    channel.connect_sink(sink, 0)

    def send(event):
        # Multiple credits in one tick are fine (piggybacking).
        channel.send_credit(Credit(0))
        channel.send_credit(Credit(1))

    sim.call_at(3, send)
    sim.run()
    assert sink.credits == [(7, 0, 0), (7, 0, 1)]


# -- coalesced delivery FIFO ---------------------------------------------------


def test_coalesced_fifo_keeps_one_pending_event(sim):
    """A busy channel holds one delivery event, not one per flit."""
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=5)
    channel.connect_sink(sink, 0)
    flits = [make_flit() for _ in range(3)]

    def send(event):
        channel.send_flit(flits[event.data])

    for tick in range(3):
        sim.call_at(10 + tick, send, data=tick)
    sim.run()
    # One send event per flit plus one self-rescheduling delivery chain:
    # 3 sends + 3 batch firings = 6, not 3 sends + 3 scheduled deliveries
    # + extra bookkeeping.  The observable contract is the arrival times.
    assert [(t, f) for t, _p, f in sink.flits] == [
        (15, flits[0]), (16, flits[1]), (17, flits[2])
    ]
    assert channel.inflight_items() == 0


def test_coalesced_pacing_overdrive_still_raises(sim):
    """Coalescing must not relax the one-flit-per-period bandwidth check."""
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=2, period=3)
    channel.connect_sink(sink, 0)
    sent = []

    def send_burst(event):
        channel.send_flit(make_flit())
        sent.append(sim.tick)
        for _ in range(2):
            with pytest.raises(ChannelError, match="overdriven"):
                channel.send_flit(make_flit())

    sim.call_at(4, send_burst)
    sim.call_at(5, lambda e: pytest.raises(ChannelError, channel.send_flit, make_flit()))
    sim.call_at(7, send_burst)  # 4 + period is free again
    sim.run()
    assert sent == [4, 7]
    assert [t for t, _p, _f in sink.flits] == [6, 9]


def test_multiple_credits_per_cycle_single_event(sim):
    """Same-tick credits coalesce into one delivery event (piggybacking)."""
    sink = SinkDevice(sim, "sink")
    channel = CreditChannel(sim, "cc", None, latency=4)
    channel.connect_sink(sink, 0)

    def send(event):
        for vc in (0, 1, 0):
            channel.send_credit(Credit(vc))
        assert channel.inflight_items() == 3

    sim.call_at(3, send)
    sim.run()
    assert sink.credits == [(7, 0, 0), (7, 0, 1), (7, 0, 0)]
    # The whole run: the send event plus ONE coalesced delivery event.
    assert sim.executed_events == 2


def test_flit_batches_refire_per_due_tick(sim):
    """Back-to-back sends produce one batch firing per due tick."""
    sink = SinkDevice(sim, "sink")
    channel = Channel(sim, "ch", None, latency=1)
    channel.connect_sink(sink, 0)
    count = [0]

    def send(event):
        channel.send_flit(make_flit())
        count[0] += 1
        if count[0] < 4:
            sim.call_at(sim.tick + 1, send)

    sim.call_at(1, send)
    sim.run()
    # 4 sends + 4 single-item batches (dues are 1 apart, never merged).
    assert sim.executed_events == 8
    assert [t for t, _p, _f in sink.flits] == [2, 3, 4, 5]

"""Flit buffers: FIFO order, capacity enforcement, infinite mode."""

import pytest

from repro.net.buffer import BufferOverrunError, FlitBuffer
from repro.net.message import Message


def make_flits(count):
    message = Message(0, 0, 1, count)
    packet = message.packetize(count)[0]
    return packet.flits


def test_fifo_order():
    buffer = FlitBuffer(4)
    flits = make_flits(3)
    for flit in flits:
        buffer.push(flit)
    assert [buffer.pop() for _ in range(3)] == flits


def test_front_peeks_without_removing():
    buffer = FlitBuffer(4)
    flits = make_flits(2)
    buffer.push(flits[0])
    assert buffer.front() is flits[0]
    assert len(buffer) == 1


def test_front_on_empty_is_none():
    assert FlitBuffer(2).front() is None


def test_overrun_raises():
    buffer = FlitBuffer(2)
    flits = make_flits(3)
    buffer.push(flits[0])
    buffer.push(flits[1])
    assert buffer.is_full()
    with pytest.raises(BufferOverrunError):
        buffer.push(flits[2])


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        FlitBuffer(2).pop()


def test_space_accounting():
    buffer = FlitBuffer(3)
    assert buffer.space == 3
    buffer.push(make_flits(1)[0])
    assert buffer.space == 2
    assert buffer.has_space(2)
    assert not buffer.has_space(3)


def test_infinite_buffer():
    buffer = FlitBuffer(None)
    assert buffer.infinite
    assert buffer.space is None
    for flit in make_flits(100):
        buffer.push(flit)
    assert not buffer.is_full()
    assert buffer.has_space(10**9)
    assert buffer.occupancy == 100


def test_invalid_capacity():
    with pytest.raises(ValueError):
        FlitBuffer(0)


def test_iteration_preserves_order():
    buffer = FlitBuffer(8)
    flits = make_flits(4)
    for flit in flits:
        buffer.push(flit)
    assert list(buffer) == flits

"""The flit/packet/message data model."""

import pytest

from repro.net.message import Message
from repro.net.packet import Packet


class TestMessage:
    def test_basic_construction(self):
        message = Message(2, 5, 9, 10)
        assert message.application_id == 2
        assert message.source == 5
        assert message.destination == 9
        assert message.num_flits == 10
        assert message.transaction_id == message.id

    def test_explicit_transaction(self):
        message = Message(0, 0, 1, 1, transaction_id=777)
        assert message.transaction_id == 777

    def test_unique_ids(self):
        a = Message(0, 0, 1, 1)
        b = Message(0, 0, 1, 1)
        assert a.id != b.id

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1, 0)
        with pytest.raises(ValueError):
            Message(0, -1, 1, 1)

    def test_latency_requires_delivery(self):
        message = Message(0, 0, 1, 1)
        assert message.latency() is None
        message.created_tick = 10
        message.delivered_tick = 35
        assert message.latency() == 25


class TestPacketization:
    def test_exact_split(self):
        message = Message(0, 0, 1, 8)
        packets = message.packetize(4)
        assert [p.num_flits for p in packets] == [4, 4]

    def test_remainder_packet(self):
        message = Message(0, 0, 1, 10)
        packets = message.packetize(4)
        assert [p.num_flits for p in packets] == [4, 4, 2]

    def test_single_packet(self):
        message = Message(0, 0, 1, 3)
        assert len(message.packetize(16)) == 1

    def test_double_packetize_rejected(self):
        message = Message(0, 0, 1, 4)
        message.packetize(2)
        with pytest.raises(RuntimeError):
            message.packetize(2)

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            Message(0, 0, 1, 4).packetize(0)

    def test_packet_ids_sequential(self):
        message = Message(0, 0, 1, 9)
        packets = message.packetize(3)
        assert [p.id for p in packets] == [0, 1, 2]


class TestFlits:
    def test_head_tail_flags(self):
        packet = Message(0, 0, 1, 4).packetize(4)[0]
        flags = [(f.head, f.tail) for f in packet.flits]
        assert flags == [(True, False), (False, False), (False, False),
                         (False, True)]

    def test_single_flit_is_head_and_tail(self):
        packet = Message(0, 0, 1, 1).packetize(1)[0]
        flit = packet.flits[0]
        assert flit.head and flit.tail

    def test_flit_indices(self):
        packet = Message(0, 0, 1, 5).packetize(5)[0]
        assert [f.index for f in packet.flits] == [0, 1, 2, 3, 4]

    def test_head_tail_accessors(self):
        packet = Message(0, 0, 1, 3).packetize(3)[0]
        assert packet.head_flit is packet.flits[0]
        assert packet.tail_flit is packet.flits[-1]


class TestPacketState:
    def test_routing_scratch_space(self):
        packet = Message(0, 0, 1, 1).packetize(1)[0]
        packet.routing_state["mode"] = "minimal"
        assert packet.routing_state["mode"] == "minimal"

    def test_age(self):
        packet = Message(0, 3, 1, 1).packetize(1)[0]
        assert packet.age(100) == 0  # not yet injected
        packet.injection_tick = 40
        assert packet.age(100) == 60

    def test_source_destination_proxy(self):
        packet = Message(0, 3, 9, 1).packetize(1)[0]
        assert packet.source == 3
        assert packet.destination == 9

    def test_invalid_flit_count(self):
        with pytest.raises(ValueError):
            Packet(Message(0, 0, 1, 1), 0, 0)

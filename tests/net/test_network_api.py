"""Network-level public API: channel utilization, lookups, wiring checks."""

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


def test_channel_utilization_report():
    simulation, results = run_config(small_torus_config())
    end = simulation.simulator.tick
    report = simulation.network.channel_utilization(end)
    assert report
    # Sorted most-loaded first, all within [0, 1].
    utilizations = [u for _name, u in report]
    assert utilizations == sorted(utilizations, reverse=True)
    assert all(0.0 <= u <= 1.0 for u in utilizations)
    assert utilizations[0] > 0.0


def test_channel_utilization_identifies_hotspot():
    """All-to-one traffic concentrates on the links entering the target
    terminal's router."""
    config = small_torus_config()
    config["workload"]["applications"][0]["traffic"] = {
        "type": "all_to_one", "target": 0}
    config["workload"]["applications"][0]["injection_rate"] = 0.05
    simulation, results = run_config(config)
    end = simulation.simulator.tick
    report = simulation.network.channel_utilization(end)
    # The single hottest channel must be the terminal link into
    # interface 0 (everything funnels through it).
    hottest_name, hottest_util = report[0]
    channel = next(c for c in simulation.network.flit_channels
                   if c.name == hottest_name)
    assert channel.sink is simulation.network.interface(0)


def test_interface_and_router_lookup():
    simulation, _results = run_config(small_torus_config())
    network = simulation.network
    assert network.interface(3).interface_id == 3
    assert network.router(5).router_id == 5
    assert network.num_terminals == 16
    assert network.num_routers == 16


def test_total_flits_in_flight_zero_after_drain():
    simulation, results = run_config(small_torus_config())
    assert results.drained
    assert simulation.network.total_flits_in_flight() == 0


def test_unknown_topology_rejected():
    config = small_torus_config()
    config["network"]["topology"] = "mobius_strip"
    with pytest.raises(Exception):
        Simulation(Settings.from_dict(config))


def test_unknown_router_architecture_rejected():
    config = small_torus_config()
    config["network"]["router"]["architecture"] = "quantum"
    with pytest.raises(Exception):
        Simulation(Settings.from_dict(config))


def test_unknown_routing_algorithm_rejected():
    config = small_torus_config()
    config["network"]["routing"]["algorithm"] = "teleport"
    with pytest.raises(Exception):
        Simulation(Settings.from_dict(config))

"""Credit accounting invariants (§IV-D: credits never go negative,
buffers never silently overrun)."""

import pytest

from repro.net.credit import Credit, CreditError, CreditTracker


def test_initial_credits_equal_capacity():
    tracker = CreditTracker([4, 8])
    assert tracker.num_vcs == 2
    assert tracker.available(0) == 4
    assert tracker.available(1) == 8
    assert tracker.capacity(0) == 4
    assert tracker.total_capacity() == 12
    assert tracker.total_available() == 12


def test_take_and_give_round_trip():
    tracker = CreditTracker([2])
    tracker.take(0)
    assert tracker.available(0) == 1
    assert tracker.occupancy(0) == 1
    tracker.give(0)
    assert tracker.available(0) == 2
    assert tracker.occupancy(0) == 0


def test_underflow_raises():
    tracker = CreditTracker([1])
    tracker.take(0)
    with pytest.raises(CreditError):
        tracker.take(0)


def test_overflow_raises():
    tracker = CreditTracker([1])
    with pytest.raises(CreditError):
        tracker.give(0)


def test_has_credit():
    tracker = CreditTracker([2])
    assert tracker.has_credit(0)
    assert tracker.has_credit(0, 2)
    assert not tracker.has_credit(0, 3)


def test_multi_count_take():
    tracker = CreditTracker([4])
    tracker.take(0, 3)
    assert tracker.available(0) == 1
    with pytest.raises(CreditError):
        tracker.take(0, 2)


def test_total_occupancy():
    tracker = CreditTracker([4, 4])
    tracker.take(0, 2)
    tracker.take(1, 1)
    assert tracker.total_occupancy() == 3


def test_invalid_construction():
    with pytest.raises(ValueError):
        CreditTracker([])
    with pytest.raises(ValueError):
        CreditTracker([0])


def test_credit_message():
    credit = Credit(3)
    assert credit.vc == 3
    with pytest.raises(ValueError):
        Credit(-1)

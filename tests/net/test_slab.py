"""Slab-backed flit state: recycling, leak accounting, misuse guards.

All Flit objects are views over the process-wide ``FLIT_SLAB``
(structure-of-arrays columns plus a LIFO freelist).  The invariants:

* packetization acquires from the freelist before growing the slab, so
  a steady-state simulation recycles a bounded working set of views;
* released handles keep a permanent 1:1 binding to their view object
  (no aliasing: a recycled handle comes back as the *same* object);
* releasing a handle twice is an immediate error;
* after a drained, sanitized run every acquired handle was released --
  the slab-level statement of "no flit leaks".

The integration checks run under ``--sanitize=flit,credit`` equivalents
so slab recycling is proven compatible with the sanitizers' method
patching (FlitSan tracks per-packet streams across recycled views).
"""

from __future__ import annotations

import pytest

from repro import Settings, Simulation
from repro.net.credit import Credit
from repro.net.flit import FLIT_SLAB, Flit
from repro.net.message import Message
from repro.sanitize import attach_sanitizers

from tests.conftest import small_torus_config


def make_packet(num_flits=3):
    return Message(0, 0, 1, num_flits).packetize(num_flits)[0]


# -- unit behaviour ------------------------------------------------------------


def test_release_then_acquire_recycles_view_object():
    packet = make_packet(2)
    released = list(packet.flits)
    FLIT_SLAB.release_packet(packet)
    fresh = make_packet(2)
    # LIFO freelist: the new packet's views are the released objects.
    assert set(map(id, fresh.flits)) == set(map(id, released))
    for i, flit in enumerate(fresh.flits):
        assert flit.packet is fresh
        assert flit.index == i
    FLIT_SLAB.release_packet(fresh)


def test_recycled_flit_state_is_reset():
    packet = make_packet(2)
    flit = packet.flits[0]
    flit.vc = 5
    flit.send_tick = 123
    flit.receive_tick = 456
    FLIT_SLAB.release_packet(packet)
    fresh = make_packet(2)
    for recycled in fresh.flits:
        assert recycled.send_tick is None
        assert recycled.receive_tick is None
    assert fresh.flits[0].head and not fresh.flits[0].tail
    assert fresh.flits[1].tail and not fresh.flits[1].head
    FLIT_SLAB.release_packet(fresh)


def test_double_release_raises():
    packet = make_packet(1)
    FLIT_SLAB.release(packet.flits[0])
    with pytest.raises(RuntimeError, match="release"):
        FLIT_SLAB.release(packet.flits[0])


def test_direct_construction_always_fresh_handle():
    packet = make_packet(1)
    FLIT_SLAB.release_packet(packet)
    capacity = FLIT_SLAB.capacity
    direct = Flit(packet, 0, True, True)  # bypasses the freelist
    assert FLIT_SLAB.capacity == capacity + 1
    assert direct is not packet.flits[0]
    FLIT_SLAB.release(direct)


def test_stats_shape():
    stats = FLIT_SLAB.stats()
    assert set(stats) >= {"capacity", "live", "acquired_total", "released_total"}
    assert stats["capacity"] >= stats["live"] >= 0


def test_credit_interning_singletons():
    # The credit-side pooling: per-VC singletons, identity not load-bearing.
    assert Credit.of(3) is Credit.of(3)
    assert Credit.of(0).vc == 0 and Credit.of(3).vc == 3
    fresh = Credit(3)
    assert fresh is not Credit.of(3) and fresh.vc == 3


# -- leak accounting under sanitized simulation --------------------------------


def test_sanitized_run_releases_every_acquired_flit():
    live_before = FLIT_SLAB.live
    acquired_before = FLIT_SLAB.acquired_total
    released_before = FLIT_SLAB.released_total
    simulation = Simulation(Settings.from_dict(small_torus_config()))
    with attach_sanitizers(simulation, "flit,credit") as suite:
        results = simulation.run(max_time=20_000)
        suite.finish()
        report = suite.report()
    assert results.drained
    assert report["flit"]["in_flight"] == 0
    acquired = FLIT_SLAB.acquired_total - acquired_before
    released = FLIT_SLAB.released_total - released_before
    assert acquired > 1000  # the workload really exercised the slab
    assert released == acquired, "flit slab leak: acquired != released"
    assert FLIT_SLAB.live == live_before


def test_steady_state_recycles_instead_of_growing():
    simulation = Simulation(Settings.from_dict(small_torus_config()))
    capacity_before = FLIT_SLAB.capacity
    acquired_before = FLIT_SLAB.acquired_total
    results = simulation.run(max_time=20_000)
    assert results.drained
    acquired = FLIT_SLAB.acquired_total - acquired_before
    grown = FLIT_SLAB.capacity - capacity_before
    # The slab only grows by the peak number of simultaneously live
    # flits; everything beyond that is recycled views.
    assert acquired > 4 * max(grown, 1)

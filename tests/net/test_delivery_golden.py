"""Golden equivalence of the two channel delivery paths.

Coalesced delivery (the default) merges per-item channel events into
per-channel batch events; the legacy path schedules one event per item.
The two paths must produce *identical simulations*: every flit and
credit lands on the same channel at the same (tick, epsilon), and the
workload-level results match.  DetSan's order-commutative delivery
digest is built exactly for this check (the order-sensitive event
digest legitimately differs, because the event streams differ).

Covered on both a torus/IQ and a folded-Clos/OQ/adaptive workload --
the two router architectures exercise disjoint send paths.
"""

from __future__ import annotations

import pytest

from repro import Settings, Simulation
from repro.configs import latent_congestion_config
from repro.net.channel import set_legacy_delivery
from repro.net.packet import preserve_packet_ids
from repro.sanitize import attach_sanitizers

from tests.conftest import small_torus_config


def _clos_config() -> dict:
    return latent_congestion_config(
        injection_rate=0.15, warmup=50, window=150, half_radix=2
    )


def _digest_run(config: dict, legacy: bool, max_time: int) -> dict:
    """Run once on the requested delivery path; return comparable state.

    Packet ids are process-global and feed routing decisions, so the
    counter is restored around each run -- both paths must see the very
    same id sequence for the comparison to be meaningful.
    """
    previous = set_legacy_delivery(legacy)
    try:
        with preserve_packet_ids():
            simulation = Simulation(Settings.from_dict(config))
            with attach_sanitizers(simulation, "det") as suite:
                results = simulation.run(max_time=max_time)
                suite.finish()
                det = suite.report()["det"]
            network = simulation.network
            return {
                "delivery_digest": det["delivery_digest"],
                "deliveries": det["deliveries"],
                "drained": results.drained,
                "injected": sum(i.flits_injected for i in network.interfaces),
                "ejected": sum(i.flits_ejected for i in network.interfaces),
                "messages": sum(i.messages_delivered for i in network.interfaces),
                "hops": sum(r.flits_received for r in network.routers),
            }
    finally:
        set_legacy_delivery(previous)


@pytest.mark.parametrize(
    "name,config,max_time",
    [
        ("torus_iq", small_torus_config(), 20_000),
        ("folded_clos_oq", _clos_config(), 2_000),
    ],
)
def test_legacy_and_coalesced_delivery_identical(name, config, max_time):
    legacy = _digest_run(config, legacy=True, max_time=max_time)
    coalesced = _digest_run(config, legacy=False, max_time=max_time)
    assert legacy["drained"] and coalesced["drained"]
    assert legacy["deliveries"] > 0
    assert legacy == coalesced, f"{name}: delivery paths diverged"


def test_legacy_flag_roundtrip():
    from repro.net.channel import legacy_delivery_enabled

    baseline = legacy_delivery_enabled()
    previous = set_legacy_delivery(not baseline)
    assert previous == baseline
    assert legacy_delivery_enabled() == (not baseline)
    set_legacy_delivery(baseline)
    assert legacy_delivery_enabled() == baseline

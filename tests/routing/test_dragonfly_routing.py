"""Dragonfly routing: minimal l-g-l paths, Valiant groups, UGAL."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.message import Message
from repro.net.network import Network
from repro.routing.base import RoutingError


def build(group_size=4, global_links=1, concentration=1, num_vcs=5,
          routing="dragonfly_minimal"):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "dragonfly",
        "group_size": group_size,
        "global_links": global_links,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 8},
        "interface": {},
        "routing": {"algorithm": routing},
    })
    return factory.create(Network, "dragonfly", Simulator(), "network",
                          None, settings, RandomManager(1))


def walk_path(network, src, dst, max_hops=8):
    """Follow first-candidate routing from src to dst; returns hops."""
    packet = Message(0, src, dst, 1).packetize(1)[0]
    router = network.routers[network.terminal_router(src)]
    input_port = network.terminal_port(src)
    hops = 0
    while True:
        algorithm = router.routing_algorithm(input_port)
        candidates = algorithm.respond(packet, 0)
        port = candidates[0][0]
        channel = router.output_channel(port)
        nxt = channel.sink
        if nxt in network.interfaces:
            assert nxt.interface_id == dst
            return hops
        packet.hop_count += 1
        hops += 1
        input_port = channel.sink_port
        router = nxt
        if hops > max_hops:
            pytest.fail(f"path {src}->{dst} did not converge")


class TestMinimal:
    def test_local_delivery(self):
        network = build()
        assert walk_path(network, 0, 1) == 1  # same group, one local hop

    def test_same_router_delivery(self):
        network = build(concentration=2)
        assert walk_path(network, 0, 1) == 0

    def test_global_paths_are_at_most_lgl(self):
        network = build()
        for dst in range(4, network.num_terminals):
            hops = walk_path(network, 0, dst)
            assert hops <= 3
            assert hops == network.minimal_hops(0, dst)

    def test_every_pair_routes(self):
        network = build(group_size=2, global_links=1)
        for src in range(network.num_terminals):
            for dst in range(network.num_terminals):
                if src != dst:
                    walk_path(network, src, dst)

    def test_vc_requirement(self):
        with pytest.raises(RoutingError):
            build(num_vcs=2)


class TestValiantAndUgal:
    def test_valiant_paths_converge(self):
        network = build(routing="dragonfly_valiant", num_vcs=5)
        for dst in range(4, network.num_terminals, 3):
            hops = walk_path(network, 0, dst, max_hops=8)
            assert hops <= 5

    def test_valiant_vc_requirement(self):
        with pytest.raises(RoutingError):
            build(routing="dragonfly_valiant", num_vcs=3)

    def test_ugal_uncongested_goes_minimal(self):
        network = build(routing="dragonfly_ugal", num_vcs=5)
        source_router = network.routers[0]
        algorithm = source_router.routing_algorithm(0)
        for _ in range(16):
            packet = Message(0, 0, 17, 1).packetize(1)[0]
            algorithm.respond(packet, 0)
            assert not packet.non_minimal

    def test_ugal_paths_converge(self):
        network = build(routing="dragonfly_ugal", num_vcs=5)
        for dst in range(4, network.num_terminals, 2):
            assert walk_path(network, 0, dst, max_hops=8) <= 5

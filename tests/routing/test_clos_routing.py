"""Folded-Clos routing: up*/down* correctness, adaptive port ordering."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.message import Message
from repro.net.network import Network
from repro.router.congestion import SOURCE_OUTPUT


def build(half_radix=2, num_levels=3, routing="clos_adaptive",
          sensor_latency=1):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "folded_clos",
        "half_radix": half_radix,
        "num_levels": num_levels,
        "num_vcs": 1,
        "channel_latency": 1,
        "router": {
            "architecture": "output_queued",
            "input_queue_depth": 8,
            "congestion_sensor": {
                "latency": sensor_latency,
                "granularity": "port",
                "source": "output",
            },
        },
        "interface": {},
        "routing": {"algorithm": routing},
    })
    return factory.create(Network, "folded_clos", Simulator(), "network",
                          None, settings, RandomManager(1))


def respond_at(network, level, index, src, dst, input_port=0):
    packet = Message(0, src, dst, 1).packetize(1)[0]
    router = network.router_at(level, index)
    return packet, router.routing_algorithm(input_port).respond(packet, 0)


class TestUpDown:
    def test_leaf_ejects_local_terminal(self):
        network = build()
        # Terminal 1 lives on leaf router 0 at down port 1.
        _p, candidates = respond_at(network, 0, 0, 0, 1)
        assert candidates == [(1, 0)]

    def test_leaf_goes_up_for_remote_terminal(self):
        network = build(half_radix=2)
        _p, candidates = respond_at(network, 0, 0, 0, 7)
        ports = {port for port, _vc in candidates}
        assert ports <= {2, 3}  # the two up ports
        assert len(ports) == 2  # adaptive offers both

    def test_descent_follows_destination_digits(self):
        network = build(half_radix=2, num_levels=3)
        # Top-level routers are ancestors of everything; the down port
        # is the destination's digit at that level.
        for dst in range(8):
            digits = network.terminal_digits(dst)
            _p, candidates = respond_at(network, 2, 0, 0, dst)
            assert candidates == [(digits[2], 0)]

    def test_mid_level_descends_when_ancestor(self):
        network = build(half_radix=2, num_levels=3)
        # Level-1 router with index digits matching dst's upper digit.
        dst = 5  # digits (1, 0, 1)
        digits = network.terminal_digits(dst)
        # Find a level-1 ancestor: its digit[1] must equal dst digit[2].
        for index in range(4):
            if network.is_ancestor(1, index, dst):
                _p, candidates = respond_at(network, 1, index, 0, dst)
                assert candidates == [(digits[1], 0)]
                break
        else:
            pytest.fail("no level-1 ancestor found")

    def test_full_path_walk(self):
        """Walk a packet hop by hop from source to destination."""
        network = build(half_radix=2, num_levels=3)
        src, dst = 0, 7
        packet = Message(0, src, dst, 1).packetize(1)[0]
        router = network.router_at(0, 0)
        hops = 0
        while True:
            algorithm = router.routing_algorithm(0)
            candidates = algorithm.respond(packet, 0)
            port = candidates[0][0]
            channel = router.output_channel(port)
            nxt = channel.sink
            if nxt in network.interfaces:
                assert nxt.interface_id == dst
                break
            packet.hop_count += 1
            router = nxt
            hops += 1
            assert hops <= 8, "routing is not converging"
        assert hops == network.minimal_hops(src, dst)


class TestAdaptiveOrdering:
    def test_least_congested_first(self):
        network = build(half_radix=2, sensor_latency=1)
        leaf = network.router_at(0, 0)
        sim = leaf.simulator
        # Make up port 2 congested, then query after the latency.
        def congest(event):
            leaf.sensor.record(SOURCE_OUTPUT, 2, 0, +6)

        seen = {}

        def check(event):
            packet = Message(0, 0, 7, 1).packetize(1)[0]
            candidates = leaf.routing_algorithm(0).respond(packet, 0)
            seen["first"] = candidates[0][0]

        sim.call_at(0, congest, epsilon=1)
        sim.call_at(10, check)
        sim.run()
        assert seen["first"] == 3  # the uncongested up port

    def test_stale_view_ignores_recent_congestion(self):
        """With a long sensing latency the routing engine cannot see a
        fresh hotspot -- the mechanism behind case study A."""
        network = build(half_radix=2, sensor_latency=100)
        leaf = network.router_at(0, 0)
        sim = leaf.simulator

        def congest(event):
            leaf.sensor.record(SOURCE_OUTPUT, 2, 0, +6)

        firsts = set()

        def check(event):
            for trial in range(8):
                packet = Message(0, 0, 7, 1).packetize(1)[0]
                candidates = leaf.routing_algorithm(0).respond(packet, 0)
                firsts.add(candidates[0][0])

        sim.call_at(0, congest, epsilon=1)
        sim.call_at(10, check)
        sim.run()
        # The stale view sees both ports as equal: the rotation spreads
        # choices over both instead of avoiding the hot one.
        assert firsts == {2, 3}


class TestDeterministic:
    def test_same_pair_same_path(self):
        network = build(routing="clos_deterministic")
        first = respond_at(network, 0, 0, 0, 7)[1]
        second = respond_at(network, 0, 0, 0, 7)[1]
        assert first[0] == second[0]

    def test_pairs_spread_over_up_ports(self):
        network = build(half_radix=2, routing="clos_deterministic")
        firsts = set()
        for dst in range(4, 8):
            for src in range(4):
                candidates = respond_at(network, 0, 0, src, dst)[1]
                firsts.add(candidates[0][0])
        assert firsts == {2, 3}

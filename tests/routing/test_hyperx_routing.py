"""HyperX routing: DOR, Valiant phases, UGAL decisions."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.message import Message
from repro.net.network import Network
from repro.router.congestion import SOURCE_OUTPUT
from repro.routing.base import RoutingError


def build(widths=[4], concentration=2, num_vcs=2,
          routing="hyperx_dimension_order", bias=0.0, sensor_latency=1):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "hyperx",
        "dimension_widths": widths,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {
            "architecture": "input_output_queued",
            "input_queue_depth": 8,
            "output_queue_depth": 8,
            "congestion_sensor": {
                "latency": sensor_latency,
                "granularity": "port",
                "source": "output",
            },
        },
        "interface": {},
        "routing": {"algorithm": routing, "ugal_bias": bias},
    })
    return factory.create(Network, "hyperx", Simulator(), "network", None,
                          settings, RandomManager(1))


def make_packet(src, dst):
    return Message(0, src, dst, 1).packetize(1)[0]


class TestDimensionOrder:
    def test_direct_hop(self):
        network = build()
        packet = make_packet(0, 6)  # router 0 -> router 3
        candidates = network.routers[0].routing_algorithm(0).respond(packet, 0)
        assert {p for p, _v in candidates} == {network.port_for(0, 0, 3)}

    def test_ejection(self):
        network = build()
        packet = make_packet(0, 1)  # same router, terminal port 1
        candidates = network.routers[0].routing_algorithm(0).respond(packet, 0)
        assert {p for p, _v in candidates} == {1}

    def test_2d_dimension_order(self):
        network = build(widths=[3, 3], concentration=1)
        # (0,0) -> (2,2): dim 0 first.
        packet = make_packet(0, 8)
        candidates = network.routers[0].routing_algorithm(0).respond(packet, 0)
        assert {p for p, _v in candidates} == {network.port_for(0, 0, 2)}


class TestValiant:
    def test_vc_count_requirement(self):
        with pytest.raises(RoutingError):
            build(widths=[4, 4], num_vcs=2, routing="hyperx_valiant")

    def test_phase_transition(self):
        network = build(routing="hyperx_valiant", num_vcs=2)
        # Drive many packets; each must either go direct (degenerate
        # intermediate) or record phase state.
        algorithm = network.routers[0].routing_algorithm(0)
        saw_nonminimal = False
        for _ in range(32):
            packet = make_packet(0, 6)
            algorithm.respond(packet, 0)
            if packet.non_minimal:
                saw_nonminimal = True
                assert packet.routing_state["val_phase"] == 0
                assert packet.intermediate not in (0, 3)
        assert saw_nonminimal

    def test_hop_vc_discipline(self):
        network = build(routing="hyperx_valiant", num_vcs=2)
        algorithm = network.routers[0].routing_algorithm(0)
        packet = make_packet(0, 6)
        candidates = algorithm.respond(packet, 0)
        assert all(vc == 0 for _p, vc in candidates)  # first hop: VC 0
        packet.hop_count = 1
        # At any second-hop router the VC must be 1.
        intermediate = packet.intermediate if packet.non_minimal else 1
        algorithm2 = network.routers[intermediate].routing_algorithm(
            network.concentration  # a router-side input port
        )
        candidates = algorithm2.respond(packet, 0)
        if not candidates[0][0] < network.concentration:  # not ejection
            assert all(vc == 1 for _p, vc in candidates)


class TestUgal:
    def test_minimal_when_uncongested(self):
        network = build(routing="hyperx_ugal", num_vcs=2)
        algorithm = network.routers[0].routing_algorithm(0)
        minimal = 0
        for _ in range(32):
            packet = make_packet(0, 6)
            algorithm.respond(packet, 0)
            if not packet.non_minimal:
                minimal += 1
        # q_min = q_val = 0 -> minimal always wins the comparison.
        assert minimal == 32

    def test_diverts_when_minimal_port_congested(self):
        network = build(routing="hyperx_ugal", num_vcs=2, sensor_latency=1)
        router = network.routers[0]
        sim = router.simulator
        min_port = network.port_for(0, 0, 3)

        def congest(event):
            # Saturate the minimal port's output queue (both VCs).
            router.sensor.record(SOURCE_OUTPUT, min_port, 0, +8)
            router.sensor.record(SOURCE_OUTPUT, min_port, 1, +8)

        outcomes = []

        def check(event):
            algorithm = router.routing_algorithm(0)
            for _ in range(64):
                packet = make_packet(0, 6)
                algorithm.respond(packet, 0)
                outcomes.append(packet.non_minimal)

        sim.call_at(0, congest, epsilon=1)
        sim.call_at(10, check)
        sim.run()
        assert any(outcomes), "UGAL never took the Valiant path"

    def test_bias_suppresses_diversion(self):
        network = build(routing="hyperx_ugal", num_vcs=2, bias=1000.0)
        router = network.routers[0]
        sim = router.simulator
        min_port = network.port_for(0, 0, 3)

        def congest(event):
            router.sensor.record(SOURCE_OUTPUT, min_port, 0, +8)
            router.sensor.record(SOURCE_OUTPUT, min_port, 1, +8)

        outcomes = []

        def check(event):
            algorithm = router.routing_algorithm(0)
            for _ in range(32):
                packet = make_packet(0, 6)
                algorithm.respond(packet, 0)
                outcomes.append(packet.non_minimal)

        sim.call_at(0, congest, epsilon=1)
        sim.call_at(10, check)
        sim.run()
        assert not any(outcomes)

    def test_decision_only_at_source_router(self):
        network = build(routing="hyperx_ugal", num_vcs=2)
        # A packet arriving at a transit router (non-terminal input)
        # without UGAL state routes minimally and records no decision.
        packet = make_packet(0, 6)
        transit = network.routers[1]
        algorithm = transit.routing_algorithm(network.concentration)
        candidates = algorithm.respond(packet, 0)
        assert candidates
        assert "val_phase" not in packet.routing_state

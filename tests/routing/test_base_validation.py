"""RoutingAlgorithm.respond() validation (§IV-D error detection)."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.message import Message
from repro.net.network import Network
from repro.routing.base import RoutingAlgorithm, RoutingError


class ScriptedRouting(RoutingAlgorithm):
    """Returns whatever the test tells it to."""

    response = []

    def route(self, packet, input_vc):
        return list(type(self).response)


def build_chain_with(routing_cls):
    models.load_all()
    # Register under a unique name per test run.
    name = f"scripted_{id(routing_cls)}"
    factory.GLOBAL_FACTORY.register(RoutingAlgorithm, name)(routing_cls)
    routing_cls.topology = "parking_lot"
    settings = Settings.from_dict({
        "topology": "parking_lot",
        "length": 2,
        "concentration": 1,
        "num_vcs": 2,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": name},
    })
    return factory.create(Network, "parking_lot", Simulator(), "network",
                          None, settings, RandomManager(1))


def make_packet():
    return Message(0, 0, 1, 1).packetize(1)[0]


def test_empty_response_rejected():
    class Empty(ScriptedRouting):
        response = []

    network = build_chain_with(Empty)
    algorithm = network.routers[0].routing_algorithm(0)
    with pytest.raises(RoutingError, match="no route"):
        algorithm.respond(make_packet(), 0)


def test_out_of_range_port_rejected():
    class BadPort(ScriptedRouting):
        response = [(99, 0)]

    network = build_chain_with(BadPort)
    algorithm = network.routers[0].routing_algorithm(0)
    with pytest.raises(RoutingError, match="out of range"):
        algorithm.respond(make_packet(), 0)


def test_unwired_port_rejected():
    """'Traffic that attempts to target an unused router output port is
    rejected' (§IV-D) -- router 0's down-chain port is unwired."""

    class Unwired(ScriptedRouting):
        response = None  # set below

    network = build_chain_with(Unwired)
    Unwired.response = [(network.down_port, 0)]
    algorithm = network.routers[0].routing_algorithm(0)
    with pytest.raises(RoutingError, match="unused output port"):
        algorithm.respond(make_packet(), 0)


def test_unregistered_vc_rejected():
    """Routing outputs are checked against the VCs registered to the
    algorithm (§IV-D)."""

    class WrongVc(ScriptedRouting):
        response = None

    network = build_chain_with(WrongVc)
    WrongVc.response = [(network.up_port, 1)]
    algorithm = network.routers[0].routing_algorithm(0)
    algorithm.register_vcs([0])  # restrict to VC 0
    with pytest.raises(RoutingError, match="not registered"):
        algorithm.respond(make_packet(), 0)


def test_register_vcs_bounds_checked():
    class Fine(ScriptedRouting):
        response = None

    network = build_chain_with(Fine)
    algorithm = network.routers[0].routing_algorithm(0)
    with pytest.raises(RoutingError):
        algorithm.register_vcs([7])


def test_valid_response_passes_and_caches():
    class Fine(ScriptedRouting):
        response = None

    network = build_chain_with(Fine)
    Fine.response = [(network.up_port, 0), (network.up_port, 1)]
    algorithm = network.routers[0].routing_algorithm(0)
    first = algorithm.respond(make_packet(), 0)
    second = algorithm.respond(make_packet(), 0)
    assert first == second == Fine.response


def test_congestion_helpers():
    class Fine(ScriptedRouting):
        response = None

    network = build_chain_with(Fine)
    Fine.response = [(network.up_port, 0)]
    algorithm = network.routers[0].routing_algorithm(0)
    value = algorithm.congestion(network.up_port, 0)
    assert value == 0.0
    assert algorithm.port_congestion(network.up_port, [0, 1]) == 0.0
    assert algorithm.port_congestion(network.up_port, []) == 0.0

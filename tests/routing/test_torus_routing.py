"""Torus routing algorithms: DOR order, datelines, adaptivity."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.message import Message
from repro.net.network import Network
from repro.routing.base import RoutingError


def build(widths, num_vcs=2, routing="torus_dimension_order",
          concentration=1):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "torus",
        "dimension_widths": widths,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": routing},
    })
    return factory.create(Network, "torus", Simulator(), "network", None,
                          settings, RandomManager(1))


def route_at(network, router_id, src, dst, input_port=0, input_vc=0):
    packet = Message(0, src, dst, 1).packetize(1)[0]
    router = network.routers[router_id]
    algorithm = router.routing_algorithm(input_port)
    return packet, algorithm.respond(packet, input_vc)


class TestDimensionOrder:
    def test_resolves_dimension_zero_first(self):
        network = build([4, 4])
        # src router 0 = (0,0); dst router (2,3) = id 14.
        _packet, candidates = route_at(network, 0, 0, 14)
        ports = {port for port, _vc in candidates}
        assert ports == {network.port_for(0, +1)}

    def test_second_dimension_after_first_resolved(self):
        network = build([4, 4])
        # router (2, 0) = id 2 routing to (2, 3) = wrap backwards in dim 1.
        _packet, candidates = route_at(network, 2, 0, 14)
        ports = {port for port, _vc in candidates}
        assert ports == {network.port_for(1, -1)}

    def test_shortest_direction(self):
        network = build([8])
        _p, plus = route_at(network, 0, 0, 3)   # 3 forward vs 5 back
        assert {p for p, _v in plus} == {network.port_for(0, +1)}
        _p, minus = route_at(network, 0, 0, 6)  # 2 back vs 6 forward
        assert {p for p, _v in minus} == {network.port_for(0, -1)}

    def test_ejection_at_destination_router(self):
        network = build([4, 4], concentration=2)
        _p, candidates = route_at(network, 3, 0, 7)  # terminal 7 -> router 3
        ports = {port for port, _vc in candidates}
        assert ports == {1}  # terminal port 7 % 2

    def test_dateline_vc_class_on_wrap_hop(self):
        network = build([4], num_vcs=2)
        # Router 3 -> dst router 0: the +1 hop wraps; must use class 1.
        packet, candidates = route_at(network, 3, 3, 0)
        assert all(vc % 2 == 1 for _port, vc in candidates)

    def test_no_dateline_class_before_wrap(self):
        network = build([4], num_vcs=2)
        packet, candidates = route_at(network, 0, 0, 2)
        assert all(vc % 2 == 0 for _port, vc in candidates)

    def test_class1_persists_after_crossing(self):
        network = build([8], num_vcs=2)
        packet = Message(0, 6, 1, 1).packetize(1)[0]
        # Hop 1: router 6 -> 7 (no wrap yet, class 0).
        algorithm = network.routers[6].routing_algorithm(0)
        candidates = algorithm.respond(packet, 0)
        assert all(vc % 2 == 0 for _p, vc in candidates)
        # Hop 2: router 7 -> 0 wraps: class 1.
        algorithm = network.routers[7].routing_algorithm(1)
        candidates = algorithm.respond(packet, 0)
        assert all(vc % 2 == 1 for _p, vc in candidates)
        # Hop 3: router 0 -> 1, already crossed: stays class 1.
        algorithm = network.routers[0].routing_algorithm(1)
        candidates = algorithm.respond(packet, 0)
        assert all(vc % 2 == 1 for _p, vc in candidates)

    def test_injection_vcs_are_class0(self):
        from repro.routing.torus import TorusDimensionOrderRouting
        assert TorusDimensionOrderRouting.injection_vcs(4) == [0, 2]

    def test_odd_vc_count_rejected(self):
        with pytest.raises(RoutingError):
            build([4], num_vcs=3)


class TestMinimalAdaptive:
    def test_profitable_dimensions_offered(self):
        network = build([4, 4], num_vcs=4, routing="torus_minimal_adaptive")
        # (0,0) to (1,1): both dims profitable.
        dst = 1 + 1 * 4
        _p, candidates = route_at(network, 0, 0, dst)
        ports = {port for port, _vc in candidates}
        assert network.port_for(0, +1) in ports
        assert network.port_for(1, +1) in ports

    def test_escape_candidates_present_and_last(self):
        network = build([4, 4], num_vcs=4, routing="torus_minimal_adaptive")
        dst = 1 + 1 * 4
        _p, candidates = route_at(network, 0, 0, dst)
        # The final candidates must be escape-class (lower half) VCs on
        # the DOR port.
        escape = [c for c in candidates if c[1] < 2]
        assert escape
        assert candidates[-1] in escape
        assert all(c[0] == network.port_for(0, +1) for c in escape)

    def test_adaptive_vcs_in_upper_half(self):
        network = build([4, 4], num_vcs=4, routing="torus_minimal_adaptive")
        dst = 1 + 1 * 4
        _p, candidates = route_at(network, 0, 0, dst)
        adaptive = [c for c in candidates if c[1] >= 2]
        assert all(vc in (2, 3) for _port, vc in adaptive)

    def test_vc_count_constraint(self):
        with pytest.raises(RoutingError):
            build([4], num_vcs=2, routing="torus_minimal_adaptive")

    def test_delivery_end_to_end(self):
        """Adaptive routing on a busy torus delivers everything."""
        from tests.conftest import run_config, small_torus_config

        config = small_torus_config()
        config["network"]["num_vcs"] = 4
        config["network"]["routing"]["algorithm"] = "torus_minimal_adaptive"
        _sim, results = run_config(config)
        assert results.drained
        assert results.delivered_fraction() == 1.0

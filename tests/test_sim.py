"""Top-level Simulation and SimulationResults."""

import math

import pytest

from repro import Settings, Simulation
from tests.conftest import run_config, small_torus_config


def test_determinism_same_seed():
    a = run_config(small_torus_config())[1]
    b = run_config(small_torus_config())[1]
    assert a.latency().mean() == b.latency().mean()
    assert a.accepted_load() == b.accepted_load()
    assert len(a.records()) == len(b.records())


def test_different_seed_differs():
    config = small_torus_config()
    config["simulator"]["seed"] = 99
    a = run_config(small_torus_config())[1]
    b = run_config(config)[1]
    assert a.latency().mean() != b.latency().mean()


def test_offered_load_tracks_injection_rate():
    _sim, results = run_config(small_torus_config())
    assert results.offered_load() == pytest.approx(0.2, abs=0.05)


def test_accepted_matches_offered_below_saturation():
    _sim, results = run_config(small_torus_config())
    assert results.accepted_load() == pytest.approx(results.offered_load(),
                                                    abs=0.03)


def test_saturated_run_reports_undelivered():
    config = small_torus_config(injection_rate=0.9)
    # Tornado on an 8-ary 1-cube shifts every source by 3: each ring
    # link carries 3x the injection rate, so DOR saturates at ~1/3.
    config["network"]["dimension_widths"] = [8]
    config["workload"]["applications"][0]["traffic"] = {"type": "tornado"}
    _sim, results = run_config(config, max_time=20_000)
    assert not results.drained
    assert results.delivered_fraction() < 1.0
    assert results.accepted_load() < 0.6


def test_latency_kinds_are_ordered():
    _sim, results = run_config(small_torus_config())
    message = results.latency(kind="message").mean()
    network = results.latency(kind="network").mean()
    # Message latency includes source queueing: >= pure network latency.
    assert message >= network


def test_summary_is_json_serializable():
    import json

    _sim, results = run_config(small_torus_config())
    text = json.dumps(results.summary())
    assert "accepted_load" in text


def test_max_time_from_settings():
    config = small_torus_config(injection_rate=0.9)
    config["workload"]["applications"][0]["traffic"] = {"type": "tornado"}
    config["simulator"]["max_time"] = 5_000
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run()
    assert simulation.simulator.tick <= 5_000


def test_records_filtering():
    _sim, results = run_config(small_torus_config())
    all_records = results.records(sampled_only=False)
    sampled = results.records(sampled_only=True)
    assert len(sampled) < len(all_records)
    app0 = results.records(application_id=0)
    assert len(app0) == len(sampled)


def test_window_is_reported():
    _sim, results = run_config(small_torus_config())
    assert results.start_tick is not None
    assert results.stop_tick is not None
    assert results.stop_tick - results.start_tick == 1500

"""CLI wiring: ``supersim --sanitize`` and ``sssweep --smoke``."""

from __future__ import annotations

import json

import pytest

import tests.sanitize.fixtures.broken_models  # noqa: F401  registers models
from repro.__main__ import main as supersim_main
from repro.tools.cli import sssweep_main
from tests.conftest import small_torus_config


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "torus.json"
    config = small_torus_config()
    config["workload"]["applications"][0]["generate_duration"] = 400
    path.write_text(json.dumps(config))
    return str(path)


@pytest.fixture
def leaky_config_file(tmp_path):
    path = tmp_path / "leaky.json"
    config = small_torus_config()
    config["network"]["router"]["architecture"] = "leaky_credit"
    path.write_text(json.dumps(config))
    return str(path)


def test_sanitize_all_clean_run_reports(config_file, capsys):
    code = supersim_main([config_file, "--sanitize=all"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    report = summary["sanitizers"]
    assert sorted(report) == ["credit", "det", "event", "flit"]
    for san in report.values():
        assert san["checks"] > 0
    assert report["flit"]["in_flight"] == 0


def test_sanitize_subset_spec(config_file, capsys):
    code = supersim_main([config_file, "--sanitize", "det,credit"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert sorted(summary["sanitizers"]) == ["credit", "det"]


def test_sanitize_unknown_name_is_a_clean_cli_error(config_file, capsys):
    code = supersim_main([config_file, "--sanitize=bogus", "--quiet"])
    assert code == 2
    assert "bogus" in capsys.readouterr().err


@pytest.mark.mutation
def test_sanitize_violation_exits_3(leaky_config_file, capsys):
    code = supersim_main([leaky_config_file, "--sanitize=credit", "--quiet"])
    assert code == 3
    err = capsys.readouterr().err
    assert "sanitizer violation" in err
    assert "[credit]" in err


def test_sssweep_smoke_gate_passes_on_clean_base(config_file, capsys):
    code = sssweep_main([
        config_file,
        "--var", "S=simulator.seed=uint=1,2",
        "--max-time", "300",
        "--smoke", "--smoke-ticks", "300",
    ])
    assert code == 0
    assert "smoke: base point clean" in capsys.readouterr().err


@pytest.mark.mutation
def test_sssweep_smoke_gate_blocks_broken_base(leaky_config_file, capsys):
    code = sssweep_main([
        leaky_config_file,
        "--var", "S=simulator.seed=uint=1,2",
        "--smoke",
        "--quiet",
    ])
    assert code == 3
    err = capsys.readouterr().err
    assert "sanitized smoke run failed" in err
    assert "not launching sweep workers" in err


def test_supersim_sweep_with_sanitize_runs_smoke(config_file, capsys):
    code = supersim_main([
        config_file,
        "--sweep", "S=simulator.seed=uint=1,2",
        "--sanitize=all",
        "--max-time", "300",
        "--workers", "1",
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "smoke: base point clean" in captured.err

"""Deliberately broken models: the sanitizer mutation-fixture suite.

Each model here seeds exactly one bug from the paper's silent-corruption
case studies (or from the engine-rewrite hazard class) while staying
fully type-correct and runnable.  The tests in ``tests/sanitize`` prove
that the matching sanitizer catches each one -- and that nothing else
in the stack does, which is the point: without the sanitizer these runs
complete and report plausible numbers.

The models register with the object factory exactly like real user
models, so the fixtures also exercise the factory path a user's broken
model would take.
"""

from __future__ import annotations

from repro import factory
from repro.core.component import Component
from repro.core.event import Event
from repro.net.flit import Flit
from repro.net.interface import Interface, StandardInterface
from repro.router.base import Router
from repro.router.input_queued import InputQueuedRouter


@factory.register(Router, "leaky_credit")
class LeakyCreditRouter(InputQueuedRouter):
    """Credit-accounting gap: silently drops every Nth upstream credit.

    The flit is consumed normally; only the credit return is skipped, so
    the upstream tracker believes the slot is occupied forever.  Local
    tracker assertions never trip (counts only ratchet down), throughput
    just quietly degrades -- the paper's credit-accounting bug class.
    """

    LEAK_EVERY = 7

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._credit_sends = 0

    def send_credit(self, port: int, vc: int) -> None:
        self._credit_sends += 1
        if self._credit_sends % self.LEAK_EVERY == 0:
            return  # the leak: slot freed, credit never returned
        super().send_credit(port, vc)


@factory.register(Router, "flit_dropper")
class FlitDroppingRouter(InputQueuedRouter):
    """Flit loss: silently discards every Nth arriving flit.

    The flit vanishes between channel and input buffer: never buffered,
    never forwarded, its credit never returned.  No local check fires;
    the affected message simply never completes.
    """

    DROP_EVERY = 50

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._flit_arrivals = 0

    def receive_flit(self, port: int, flit: Flit) -> None:
        self._flit_arrivals += 1
        if self._flit_arrivals % self.DROP_EVERY == 0:
            return  # the drop
        super().receive_flit(port, flit)


@factory.register(Interface, "head_resend")
class HeadResendInterface(StandardInterface):
    """Stream-order corruption: re-sends the head flit in place of body 1.

    Credit and channel accounting stay perfectly balanced (same number
    of flits cross the link), so only a per-VC stream-order check can
    see that the packet's second flit is the head object again.
    """

    def send_flit(self, port: int, flit: Flit) -> None:
        if not flit.head and flit.index == 1:
            resent = flit.packet.flits[0]
            resent.vc = flit.vc
            flit = resent
        super().send_flit(port, flit)


class StaleCancelModel(Component):
    """Event-lifecycle misuse: cancels a handle whose event already fired.

    The model keeps the handle past the event's lifetime and "stops" it
    later -- a no-op by design (the engine tolerates stale cancels), but
    the model now believes it prevented work that already happened.
    """

    def __init__(self, simulator, name="stale_cancel", parent=None):
        super().__init__(simulator, name, parent)
        self.handle: Event = self.schedule_at(self._tick_once, 10)
        self.schedule_at(self._late_stop, 20)
        self.fired_ticks = []

    def _tick_once(self, event: Event) -> None:
        self.fired_ticks.append(self.simulator.tick)

    def _late_stop(self, event: Event) -> None:
        self.handle.cancel()  # the bug: the event fired at tick 10


class DoubleScheduleModel(Component):
    """Event-lifecycle misuse: queues the same Event object twice.

    Both queue entries point at one object; the second firing executes a
    logically dead event (and can alias freelist state in larger runs).
    """

    def __init__(self, simulator, name="double_schedule", parent=None):
        super().__init__(simulator, name, parent)
        event = Event(self._work)
        simulator.add_event(event, 10)
        simulator.add_event(event, 10)  # same time: one object, two entries
        self.fire_count = 0

    def _work(self, event: Event) -> None:
        self.fire_count += 1


class TimeMutatorModel(Component):
    """Engine-field misuse: rewrites ``event.tick`` after scheduling.

    The heap key was packed at scheduling time, so the event still fires
    at the original time while claiming another -- silent in normal runs.
    """

    def __init__(self, simulator, name="time_mutator", parent=None):
        super().__init__(simulator, name, parent)
        handle = self.schedule_at(self._work, 10)
        handle.tick = 500  # the bug: engine-owned field mutated

    def _work(self, event: Event) -> None:
        pass


class UnseededRandomModel(Component):
    """Determinism leak: schedules from the *global* ``random`` module.

    Every draw comes from process-global state instead of the
    simulation's seeded RandomManager, so two same-seed runs walk
    different event sequences.
    """

    def __init__(self, simulator, name="unseeded", parent=None, steps=50):
        super().__init__(simulator, name, parent)
        self.remaining = steps
        self.schedule_at(self._step, 1)

    def _step(self, event: Event) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            return
        import random  # noqa: PLC0415 - the bug is using the global RNG

        gap = 1 + int(random.random() * 3)
        self.schedule(self._step, gap)

"""The sanitizer mutation-fixture suite.

Every deliberately broken model in ``fixtures.broken_models`` must be
caught by exactly the sanitizer built for its bug class -- and the same
simulations must run *clean* with the broken model swapped back out.
Both directions matter: a sanitizer that never fires proves nothing,
and one that fires on correct models is unusable.
"""

from __future__ import annotations

import pytest

from repro import Settings, Simulation
from repro.core.simulator import Simulator
from repro.sanitize import (
    SANITIZER_NAMES,
    SanitizerError,
    attach_sanitizers,
)

from tests.conftest import small_torus_config
from tests.sanitize.fixtures import broken_models  # noqa: F401 - registers fixtures


class BareSimulation:
    """Just enough of the Simulation surface for network-less sanitizers."""

    def __init__(self, simulator: Simulator):
        self.simulator = simulator


def torus_simulation(**network_overrides) -> Simulation:
    config = small_torus_config()
    for key, value in network_overrides.items():
        keys = key.split(".")
        node = config["network"]
        for part in keys[:-1]:
            node = node[part]
        node[keys[-1]] = value
    return Simulation(Settings.from_dict(config))


# -- every fixture is caught ---------------------------------------------------


@pytest.mark.mutation
def test_credit_san_catches_leaked_credit():
    simulation = torus_simulation(**{"router.architecture": "leaky_credit"})
    with attach_sanitizers(simulation, "credit") as suite:
        with pytest.raises(SanitizerError, match="credit accounting gap"):
            simulation.run()
            suite.finish()


@pytest.mark.mutation
def test_flit_san_catches_stream_corruption():
    simulation = torus_simulation(**{"interface.type": "head_resend"})
    with attach_sanitizers(simulation, "flit") as suite:
        with pytest.raises(SanitizerError, match=r"\[flit\]"):
            simulation.run()
            suite.finish()


@pytest.mark.mutation
def test_flit_san_catches_dropped_flit():
    simulation = torus_simulation(**{"router.architecture": "flit_dropper"})
    with attach_sanitizers(simulation, "flit") as suite:
        with pytest.raises(SanitizerError, match=r"\[flit\]"):
            simulation.run()
            suite.finish()


@pytest.mark.mutation
def test_event_san_catches_stale_cancel():
    simulator = Simulator()
    model = broken_models.StaleCancelModel(simulator)
    with attach_sanitizers(BareSimulation(simulator), "event"):
        with pytest.raises(SanitizerError, match="stale cancel"):
            simulator.run()
    assert model.fired_ticks == [10]


@pytest.mark.mutation
def test_event_san_catches_double_schedule():
    simulator = Simulator()
    broken_models.DoubleScheduleModel(simulator)
    with attach_sanitizers(BareSimulation(simulator), "event"):
        with pytest.raises(SanitizerError, match="double fire"):
            simulator.run()


@pytest.mark.mutation
def test_event_san_catches_time_field_mutation():
    simulator = Simulator()
    broken_models.TimeMutatorModel(simulator)
    with attach_sanitizers(BareSimulation(simulator), "event"):
        with pytest.raises(SanitizerError, match="time fields mutated"):
            simulator.run()


@pytest.mark.mutation
def test_event_san_catches_recycled_carcass_reschedule():
    simulator = Simulator()
    fired = []
    simulator.call_at(5, lambda event: fired.append(simulator.tick))
    with attach_sanitizers(BareSimulation(simulator), "event"):
        simulator.run()
        assert fired == [5]
        # The fired event was pooled and poisoned; a stale handle that
        # re-schedules the carcass must be caught at its firing.
        assert simulator.recycled_events == 1
        carcass = simulator._event_pool[-1]
        simulator.add_event(carcass, 50)
        with pytest.raises(SanitizerError, match="recycled event executed"):
            simulator.run()


@pytest.mark.mutation
def test_det_san_catches_unseeded_randomness():
    import random

    digests = []
    for seed in (1, 2):
        random.seed(seed)  # two "identical" runs with different global state
        simulator = Simulator()
        broken_models.UnseededRandomModel(simulator)
        with attach_sanitizers(BareSimulation(simulator), "det") as suite:
            simulator.run()
            suite.finish()
            digests.append(suite.report()["det"]["digest"])
    assert digests[0] != digests[1]


# -- and the unbroken equivalents run clean ------------------------------------


def test_all_sanitizers_clean_on_correct_models():
    simulation = torus_simulation()
    with attach_sanitizers(simulation, "all") as suite:
        simulation.run()
        suite.finish()
        report = suite.report()
    assert simulation.workload.drained
    assert set(report) == set(SANITIZER_NAMES)
    for name in SANITIZER_NAMES:
        assert report[name]["checks"] > 0, f"{name} never checked anything"
    assert report["flit"]["in_flight"] == 0


@pytest.mark.parametrize(
    "architecture", ["input_queued", "output_queued", "input_output_queued"]
)
def test_sanitizers_clean_across_router_architectures(architecture):
    simulation = torus_simulation(**{"router.architecture": architecture})
    with attach_sanitizers(simulation, "all") as suite:
        simulation.run()
        suite.finish()
    assert simulation.workload.drained


def test_det_san_same_seed_runs_match():
    digests = []
    for _ in range(2):
        simulation = torus_simulation()
        with attach_sanitizers(simulation, "det") as suite:
            simulation.run()
            suite.finish()
            digests.append(suite.report()["det"]["digest"])
    assert digests[0] == digests[1]


def test_det_san_diff_locates_divergence():
    from repro.sanitize import DetSan, first_divergence

    run_a = DetSan()
    run_b = DetSan()
    run_a.trace = [(1, 10), (2, 20), (3, 30)]
    run_b.trace = [(1, 10), (2, 21), (3, 31)]
    assert first_divergence(run_a.trace, run_b.trace) == 1
    diff = run_a.diff(run_b)
    assert diff["index"] == 1
    assert diff["self"]["tick"] == 0 and diff["self"]["epsilon"] == 2
    run_b.trace = list(run_a.trace)
    run_b.digest = run_a.digest
    assert run_a.diff(run_b) is None


# -- attach/detach hygiene ----------------------------------------------------


def test_detach_restores_patched_methods():
    from repro.core.event import Event
    from repro.net.channel import Channel, CreditChannel
    from repro.net.credit import CreditTracker

    originals = (
        Channel.send_flit,
        Channel._deliver,
        CreditChannel.send_credit,
        CreditChannel._deliver,
        CreditTracker.take,
        CreditTracker.give,
        Event.cancel,
    )
    simulation = torus_simulation()
    with attach_sanitizers(simulation, "all"):
        patched = (
            Channel.send_flit,
            CreditTracker.take,
            Event.cancel,
        )
        assert all(now is not before for now, before in
                   zip(patched, (originals[0], originals[4], originals[6])))
    assert (
        Channel.send_flit,
        Channel._deliver,
        CreditChannel.send_credit,
        CreditChannel._deliver,
        CreditTracker.take,
        CreditTracker.give,
        Event.cancel,
    ) == originals


def test_detach_runs_even_when_violation_raises():
    from repro.net.channel import Channel

    original = Channel.send_flit
    simulation = torus_simulation(**{"router.architecture": "leaky_credit"})
    with pytest.raises(SanitizerError):
        with attach_sanitizers(simulation, "credit") as suite:
            simulation.run()
            suite.finish()
    assert Channel.send_flit is original


def test_unsanitized_simulation_unaffected_while_attached():
    """Patched classes must pass through for simulations not attached."""
    sanitized = torus_simulation()
    with attach_sanitizers(sanitized, "credit,flit"):
        other = torus_simulation()
        other.run()
        assert other.workload.drained


def test_spec_parsing():
    from repro.sanitize.base import _parse_spec

    assert _parse_spec("all") == list(SANITIZER_NAMES)
    assert _parse_spec("det, credit") == ["credit", "det"]  # canonical order
    assert _parse_spec(["flit"]) == ["flit"]
    with pytest.raises(SanitizerError):
        _parse_spec("")


def test_unknown_sanitizer_name_is_rejected():
    simulation = torus_simulation()
    with pytest.raises(Exception) as excinfo:
        attach_sanitizers(simulation, "credit,bogus")
    assert "bogus" in str(excinfo.value)

"""Event object behaviour."""

from repro.core.event import Event
from repro.core.simtime import TimeStep
from repro.core.simulator import Simulator


def test_time_property_before_scheduling():
    event = Event(lambda e: None)
    assert event.time is None


def test_time_property_after_scheduling():
    simulator = Simulator()
    event = simulator.call_at(10, lambda e: None, epsilon=3)
    assert event.time == TimeStep(10, 3)


def test_data_defaults_to_none():
    assert Event(lambda e: None).data is None


def test_cancel_flag():
    event = Event(lambda e: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled


def test_repr_mentions_handler():
    def my_handler(event):
        pass

    event = Event(my_handler, data=7)
    assert "my_handler" in repr(event)

"""Event object behaviour."""

from repro.core.event import Event
from repro.core.simtime import TimeStep
from repro.core.simulator import Simulator


def test_time_property_before_scheduling():
    event = Event(lambda e: None)
    assert event.time is None


def test_time_property_after_scheduling():
    simulator = Simulator()
    event = simulator.call_at(10, lambda e: None, epsilon=3)
    assert event.time == TimeStep(10, 3)


def test_data_defaults_to_none():
    assert Event(lambda e: None).data is None


def test_cancel_flag():
    event = Event(lambda e: None)
    assert not event.cancelled
    event.cancel()
    assert event.cancelled


def test_repr_mentions_handler():
    def my_handler(event):
        pass

    event = Event(my_handler, data=7)
    assert "my_handler" in repr(event)


def test_cancel_after_fire_is_noop():
    simulator = Simulator()
    fired = []
    handle = simulator.call_at(5, lambda e: fired.append(True))
    simulator.run()
    assert fired == [True]
    assert handle.fired
    handle.cancel()
    assert not handle.cancelled


def test_freelist_reuse_increments_generation():
    simulator = Simulator()
    seen = []

    def handler(event):
        seen.append((id(event), event.generation))

    simulator.call_at(1, handler)
    simulator.run()
    assert simulator.recycled_events == 1
    simulator.call_at(2, handler)
    # The pooled object was handed back out...
    assert simulator.recycled_events == 0
    simulator.run()
    # ...same object, next generation.
    assert seen[1][0] == seen[0][0]
    assert seen[1][1] == seen[0][1] + 1


def test_stale_cancel_cannot_kill_unrelated_reuse():
    """Regression: a stale handle's cancel() must never cancel a later
    scheduling.

    Recycling is refcount-gated, so an event we still hold a handle to
    is never reused -- and cancel() on the fired handle is a no-op.
    """
    simulator = Simulator()
    runs = []
    handle = simulator.call_at(1, lambda e: runs.append("a"))
    simulator.run()
    # We hold `handle`, so the engine refused to recycle it:
    fresh = simulator.call_at(2, lambda e: runs.append("b"))
    assert fresh is not handle
    handle.cancel()  # stale cancel of the fired event: no-op
    assert not fresh.cancelled
    simulator.run()
    assert runs == ["a", "b"]


def test_cancel_before_fire_still_works_with_freelist():
    simulator = Simulator()
    runs = []
    simulator.call_at(1, lambda e: runs.append("warm"))
    simulator.run()  # park one event in the pool
    victim = simulator.call_at(2, lambda e: runs.append("victim"))
    victim.cancel()
    simulator.call_at(3, lambda e: runs.append("kept"))
    simulator.run()
    assert runs == ["warm", "kept"]

"""Deterministic named RNG streams."""

from repro.core.rng import RandomManager


def test_same_label_same_stream():
    manager = RandomManager(42)
    a = manager.generator("router0")
    b = manager.generator("router0")
    assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))


def test_different_labels_differ():
    manager = RandomManager(42)
    a = manager.generator("router0").integers(0, 1_000_000, 20)
    b = manager.generator("router1").integers(0, 1_000_000, 20)
    assert list(a) != list(b)


def test_different_root_seeds_differ():
    a = RandomManager(1).generator("x").integers(0, 1_000_000, 20)
    b = RandomManager(2).generator("x").integers(0, 1_000_000, 20)
    assert list(a) != list(b)


def test_seed_derivation_is_stable_across_calls():
    manager = RandomManager(7)
    assert manager.derive_seed("abc") == manager.derive_seed("abc")
    assert manager.derive_seed("abc") != manager.derive_seed("abd")


def test_derived_seeds_are_nonnegative_63_bit():
    manager = RandomManager(123456789)
    for label in ("a", "b", "c", "weird/label.0"):
        seed = manager.derive_seed(label)
        assert 0 <= seed < 2**63


def test_adding_streams_does_not_perturb_existing():
    """The property sweeps rely on: new components don't shift old streams."""
    manager = RandomManager(99)
    before = list(manager.generator("existing").integers(0, 100, 10))
    manager.generator("newcomer")  # create an unrelated stream
    after = list(manager.generator("existing").integers(0, 100, 10))
    assert before == after

"""The DES engine: ordering, cancellation, limits, registry (§III-A)."""

import pytest

from repro.core.component import Component
from repro.core.event import Event
from repro.core.simtime import TimeStep
from repro.core.simulator import SimulationError, Simulator


def test_events_execute_in_time_order(simulator):
    order = []
    simulator.call_at(30, lambda e: order.append("c"))
    simulator.call_at(10, lambda e: order.append("a"))
    simulator.call_at(20, lambda e: order.append("b"))
    simulator.run()
    assert order == ["a", "b", "c"]


def test_epsilon_orders_within_tick(simulator):
    order = []
    simulator.call_at(5, lambda e: order.append("late"), epsilon=9)
    simulator.call_at(5, lambda e: order.append("early"), epsilon=1)
    simulator.run()
    assert order == ["early", "late"]


def test_equal_times_run_in_schedule_order(simulator):
    order = []
    for tag in ("first", "second", "third"):
        simulator.call_at(7, lambda e, t=tag: order.append(t), epsilon=2)
    simulator.run()
    assert order == ["first", "second", "third"]


def test_now_advances_with_execution(simulator):
    seen = []
    simulator.call_at(12, lambda e: seen.append(simulator.now))
    simulator.run()
    assert seen == [TimeStep(12, 0)]
    assert simulator.now == TimeStep(12, 0)


def test_handler_can_schedule_more_events(simulator):
    order = []

    def first(event):
        order.append("first")
        simulator.call_at(simulator.tick + 5, lambda e: order.append("second"))

    simulator.call_at(1, first)
    simulator.run()
    assert order == ["first", "second"]
    assert simulator.tick == 6


def test_scheduling_in_past_rejected(simulator):
    def handler(event):
        with pytest.raises(SimulationError):
            simulator.call_at(3, lambda e: None)

    simulator.call_at(10, handler)
    simulator.run()


def test_scheduling_at_exact_now_rejected(simulator):
    def handler(event):
        with pytest.raises(SimulationError):
            simulator.call_at(10, lambda e: None, epsilon=0)

    simulator.call_at(10, handler, epsilon=0)
    simulator.run()


def test_same_tick_later_epsilon_allowed(simulator):
    order = []

    def handler(event):
        order.append("a")
        simulator.call_at(10, lambda e: order.append("b"), epsilon=1)

    simulator.call_at(10, handler, epsilon=0)
    simulator.run()
    assert order == ["a", "b"]


def test_cancelled_events_are_skipped(simulator):
    order = []
    event = simulator.call_at(10, lambda e: order.append("cancelled"))
    simulator.call_at(20, lambda e: order.append("kept"))
    event.cancel()
    simulator.run()
    assert order == ["kept"]


def test_event_data_payload(simulator):
    seen = []
    simulator.add_event(Event(lambda e: seen.append(e.data), data={"x": 1}), 5)
    simulator.run()
    assert seen == [{"x": 1}]


def test_run_max_time_pauses_and_resumes(simulator):
    order = []
    simulator.call_at(10, lambda e: order.append("a"))
    simulator.call_at(50, lambda e: order.append("b"))
    simulator.run(max_time=20)
    assert order == ["a"]
    assert simulator.queue_size == 1
    simulator.run()
    assert order == ["a", "b"]


def test_run_max_events(simulator):
    order = []
    for tick in (1, 2, 3, 4):
        simulator.call_at(tick, lambda e, t=tick: order.append(t))
    simulator.run(max_events=2)
    assert order == [1, 2]


def test_executed_events_counter(simulator):
    for tick in range(5):
        simulator.call_at(tick + 1, lambda e: None)
    simulator.run()
    assert simulator.executed_events == 5


def test_component_registry(simulator):
    parent = Component(simulator, "net")
    child = Component(simulator, "router3", parent)
    assert child.full_name == "net.router3"
    assert simulator.find_component("net.router3") is child
    assert simulator.find_component("missing") is None
    assert simulator.num_components == 2


def test_duplicate_component_names_rejected(simulator):
    Component(simulator, "dup")
    with pytest.raises(SimulationError):
        Component(simulator, "dup")


def test_component_name_validation(simulator):
    with pytest.raises(ValueError):
        Component(simulator, "")
    with pytest.raises(ValueError):
        Component(simulator, "a.b")


def test_component_schedule_relative(simulator):
    parent = Component(simulator, "c")
    order = []

    def start(event):
        parent.schedule(lambda e: order.append(simulator.tick), 7)

    simulator.call_at(3, start)
    simulator.run()
    assert order == [10]


def test_component_zero_delay_uses_next_epsilon(simulator):
    parent = Component(simulator, "c")
    order = []

    def start(event):
        parent.schedule(lambda e: order.append(simulator.now.epsilon), 0)

    simulator.call_at(3, start, epsilon=2)
    simulator.run()
    assert order == [3]


def test_run_observer_called(simulator):
    calls = []
    simulator.add_run_observer(lambda s: calls.append(s.tick))
    simulator.call_at(4, lambda e: None)
    simulator.run()
    assert calls == [4]


# -- pending_events / compaction (lazy-delete accounting) ---------------------


def test_pending_events_excludes_cancelled(simulator):
    events = [simulator.call_at(i + 1, lambda e: None) for i in range(4)]
    events[0].cancel()
    events[1].cancel()
    assert simulator.queue_size == 4  # raw length keeps the dead entries
    assert simulator.pending_events == 2


def test_compaction_triggers_on_cancel_threshold():
    simulator = Simulator()
    keep = [simulator.call_at(1000 + i, lambda e: None) for i in range(10)]
    victims = [
        simulator.call_at(i + 1, lambda e: None)
        for i in range(Simulator.COMPACT_MIN_CANCELLED + 10)
    ]
    for victim in victims:
        victim.cancel()
    # The threshold crossing compacted the heap mid-way through.
    assert simulator.compactions == 1
    assert simulator.pending_events == len(keep)
    assert simulator.queue_size < len(keep) + len(victims)
    simulator.run()
    assert simulator.executed_events == len(keep)


def test_manual_compact_reports_dropped(simulator):
    events = [simulator.call_at(i + 1, lambda e: None) for i in range(6)]
    for event in events[:3]:
        event.cancel()
    dropped = simulator.compact()
    assert dropped == 3
    assert simulator.queue_size == 3
    assert simulator.pending_events == 3
    simulator.run()
    assert simulator.executed_events == 3


# -- per-run limit semantics ---------------------------------------------------


def test_max_events_budget_is_per_run(simulator):
    order = []
    for tick in range(1, 7):
        simulator.call_at(tick, lambda e, t=tick: order.append(t))
    simulator.run(max_events=2)
    assert order == [1, 2]
    # A resumed run gets a fresh budget, not the leftovers of a global
    # counter.
    simulator.run(max_events=2)
    assert order == [1, 2, 3, 4]
    simulator.run()
    assert order == [1, 2, 3, 4, 5, 6]


def test_max_seconds_generous_deadline_completes(simulator):
    for tick in range(1, 5):
        simulator.call_at(tick, lambda e: None)
    simulator.run(max_seconds=60.0)
    assert simulator.pending_events == 0
    assert simulator.executed_events == 4


# -- engine internals guard rails ---------------------------------------------


def test_epsilon_beyond_packed_limit_rejected(simulator):
    from repro.core.simulator import EPSILON_LIMIT

    with pytest.raises(SimulationError):
        simulator.call_at(1, lambda e: None, epsilon=EPSILON_LIMIT)
    with pytest.raises(SimulationError):
        simulator.add_event(Event(lambda e: None), 1, epsilon=EPSILON_LIMIT)


def test_pool_disabled_never_recycles():
    simulator = Simulator(event_pool_size=0)
    for i in range(10):
        simulator.call_at(i + 1, lambda e: None)
    simulator.run()
    assert simulator.recycled_events == 0
    assert simulator.executed_events == 10


def test_index_error_in_handler_propagates(simulator):
    def bad(event):
        [].pop()

    simulator.call_at(1, bad)
    with pytest.raises(IndexError):
        simulator.run()


def test_index_error_in_handler_propagates_with_max_time(simulator):
    def bad(event):
        raise IndexError("from handler")

    simulator.call_at(1, bad)
    with pytest.raises(IndexError, match="from handler"):
        simulator.run(max_time=100)

"""Clock domains (paper §III-B, Fig. 2b)."""

import pytest

from repro.core.clock import Clock
from repro.core.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_figure_2b_example(sim):
    """Clock A: 3-tick period; Clock B: 2-tick period."""
    clock_a = Clock(sim, period=3)
    clock_b = Clock(sim, period=2)
    assert [t for t in range(10) if clock_a.is_edge(t)] == [0, 3, 6, 9]
    assert [t for t in range(10) if clock_b.is_edge(t)] == [0, 2, 4, 6, 8]


def test_phase_offset(sim):
    clock = Clock(sim, period=4, phase=1)
    assert [t for t in range(10) if clock.is_edge(t)] == [1, 5, 9]


def test_next_edge_at_or_after(sim):
    clock = Clock(sim, period=3)
    assert clock.next_edge(0) == 0
    assert clock.next_edge(1) == 3
    assert clock.next_edge(3) == 3
    assert clock.next_edge(4) == 6


def test_following_edge_strictly_after(sim):
    clock = Clock(sim, period=3)
    assert clock.following_edge(0) == 3
    assert clock.following_edge(2) == 3
    assert clock.following_edge(3) == 6


def test_next_edge_before_phase(sim):
    clock = Clock(sim, period=5, phase=2)
    assert clock.next_edge(0) == 2
    assert clock.next_edge(2) == 2
    assert clock.next_edge(3) == 7


def test_cycles_to_ticks(sim):
    clock = Clock(sim, period=4)
    assert clock.cycles_to_ticks(3) == 12
    with pytest.raises(ValueError):
        clock.cycles_to_ticks(-1)


def test_frequency_ratio_speedup(sim):
    """2x frequency speedup: core twice as fast as the channel."""
    core = Clock(sim, period=1)
    channel = Clock(sim, period=2)
    assert core.frequency_ratio(channel) == 2.0
    assert channel.frequency_ratio(core) == 0.5


def test_invalid_parameters(sim):
    with pytest.raises(ValueError):
        Clock(sim, period=0)
    with pytest.raises(ValueError):
        Clock(sim, period=2, phase=2)
    with pytest.raises(ValueError):
        Clock(sim, period=2, phase=-1)

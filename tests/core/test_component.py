"""Component hierarchy and scheduling helpers."""

import pytest

from repro.core.component import Component
from repro.core.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_hierarchy_names(sim):
    root = Component(sim, "network")
    router = Component(sim, "router0", root)
    port = Component(sim, "in3", router)
    assert port.full_name == "network.router0.in3"
    assert port.parent is router
    assert root.parent is None


def test_schedule_at_absolute(sim):
    component = Component(sim, "c")
    fired = []
    component.schedule_at(lambda e: fired.append(sim.tick), 42, epsilon=3)
    sim.run()
    assert fired == [42]
    assert sim.now.epsilon == 3


def test_schedule_carries_data(sim):
    component = Component(sim, "c")
    seen = []
    component.schedule_at(lambda e: seen.append(e.data), 5, data="payload")
    sim.run()
    assert seen == ["payload"]


def test_debug_output(sim, capsys):
    component = Component(sim, "noisy")
    component.dbg("hidden")  # debugging off: no output
    assert capsys.readouterr().out == ""
    component.set_debug(True)
    component.dbg("visible")
    out = capsys.readouterr().out
    assert "noisy" in out and "visible" in out


def test_repr(sim):
    component = Component(sim, "thing")
    assert "thing" in repr(component)

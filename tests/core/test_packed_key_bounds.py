"""Packed heap-key boundaries: epsilon guard and tick-overflow bounds.

The event queue packs ``(tick, epsilon)`` into one integer key,
``key = (tick << EPSILON_BITS) | epsilon``.  Two hazards follow:

* an epsilon at or above ``2**EPSILON_BITS`` would silently bleed into
  the tick field (epsilon ``2**20`` at tick 5 would sort as tick 6,
  epsilon 0) -- every scheduling entry point must reject it instead;
* ticks at or above ``TICK_FAST_LIMIT = 2**43`` push the key past a
  63-bit machine word.  CPython falls off its fast int-comparison path
  but the arithmetic stays exact, so ordering must remain correct.

These are regression tests for both boundaries; the constants and the
rationale live in :mod:`repro.core.simulator`'s module docstring.
"""

from __future__ import annotations

import pytest

from repro.core.simulator import (
    EPSILON_BITS,
    EPSILON_LIMIT,
    TICK_FAST_LIMIT,
    SimulationError,
    Simulator,
)


def _noop(event):
    pass


def test_constants_are_consistent():
    assert EPSILON_LIMIT == 1 << EPSILON_BITS
    assert TICK_FAST_LIMIT == 1 << (63 - EPSILON_BITS)
    # The largest fast key fits a signed 64-bit machine word.
    largest_fast = ((TICK_FAST_LIMIT - 1) << EPSILON_BITS) | (EPSILON_LIMIT - 1)
    assert largest_fast < 1 << 63


def test_epsilon_below_limit_is_accepted():
    simulator = Simulator()
    event = simulator.call_at(10, _noop, epsilon=EPSILON_LIMIT - 1)
    assert event.tick == 10
    assert event.epsilon == EPSILON_LIMIT - 1


@pytest.mark.parametrize("epsilon", [EPSILON_LIMIT, EPSILON_LIMIT + 1, -1])
def test_epsilon_outside_range_raises_not_corrupts(epsilon):
    simulator = Simulator()
    with pytest.raises(SimulationError):
        simulator.call_at(10, _noop, epsilon=epsilon)
    # Nothing was enqueued: the bad key never reached the heap.
    assert simulator.pending_events == 0


def test_epsilon_guard_covers_every_entry_point():
    from repro.core.event import Event

    simulator = Simulator()
    event = Event(_noop)
    with pytest.raises(SimulationError):
        simulator.add_event(event, 10, epsilon=EPSILON_LIMIT)
    assert simulator.pending_events == 0


def test_ordering_at_the_epsilon_boundary():
    """(t, EPSILON_LIMIT-1) fires before (t+1, 0): no field bleed."""
    simulator = Simulator()
    order = []
    simulator.call_at(6, lambda e: order.append("next-tick"), epsilon=0)
    simulator.call_at(5, lambda e: order.append("max-eps"),
                      epsilon=EPSILON_LIMIT - 1)
    simulator.call_at(5, lambda e: order.append("eps0"), epsilon=0)
    simulator.run()
    assert order == ["eps0", "max-eps", "next-tick"]


def test_ticks_beyond_the_fast_limit_stay_correct():
    """Keys past 63 bits compare slower but must still sort exactly."""
    simulator = Simulator()
    order = []
    big = TICK_FAST_LIMIT  # first tick whose packed key leaves 63 bits
    simulator.call_at(big + 1, lambda e: order.append("big+1"))
    simulator.call_at(big, lambda e: order.append("big-eps"),
                      epsilon=EPSILON_LIMIT - 1)
    simulator.call_at(big, lambda e: order.append("big"))
    simulator.call_at(big - 1, lambda e: order.append("fast"),
                      epsilon=EPSILON_LIMIT - 1)
    result = simulator.run()
    assert order == ["fast", "big", "big-eps", "big+1"]
    assert result.tick == big + 1


def test_scheduling_across_the_fast_boundary_from_a_handler():
    """Relative delays that cross 2**43 keep exact causality."""
    simulator = Simulator()
    seen = []

    def hop(event):
        seen.append(simulator.tick)
        if len(seen) < 3:
            simulator.call_at(simulator.tick + TICK_FAST_LIMIT // 2, hop)

    simulator.call_at(TICK_FAST_LIMIT - 1, hop)
    simulator.run()
    assert seen == [
        TICK_FAST_LIMIT - 1,
        TICK_FAST_LIMIT - 1 + TICK_FAST_LIMIT // 2,
        TICK_FAST_LIMIT - 1 + TICK_FAST_LIMIT,
    ]

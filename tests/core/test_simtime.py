"""TimeStep: ordering, immutability, arithmetic (paper §III-B)."""

import pytest

from repro.core.simtime import MAX_EPSILON, ZERO, TimeStep, as_timestep


class TestConstruction:
    def test_basic(self):
        t = TimeStep(5, 3)
        assert t.tick == 5
        assert t.epsilon == 3

    def test_default_epsilon(self):
        assert TimeStep(9).epsilon == 0

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            TimeStep(-1)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            TimeStep(0, -1)

    def test_epsilon_bound(self):
        TimeStep(0, MAX_EPSILON)  # at the bound: fine
        with pytest.raises(ValueError):
            TimeStep(0, MAX_EPSILON + 1)

    def test_zero_constant(self):
        assert ZERO == TimeStep(0, 0)


class TestImmutability:
    def test_cannot_set_tick(self):
        t = TimeStep(1, 1)
        with pytest.raises(AttributeError):
            t.tick = 5

    def test_cannot_add_attribute(self):
        t = TimeStep(1, 1)
        with pytest.raises(AttributeError):
            t.extra = "nope"


class TestOrdering:
    def test_tick_dominates_epsilon(self):
        # A lower tick is always higher priority regardless of epsilons.
        assert TimeStep(1, 999) < TimeStep(2, 0)

    def test_epsilon_breaks_ties(self):
        assert TimeStep(5, 1) < TimeStep(5, 2)

    def test_equality(self):
        assert TimeStep(3, 4) == TimeStep(3, 4)
        assert TimeStep(3, 4) != TimeStep(3, 5)

    def test_total_ordering_helpers(self):
        assert TimeStep(2, 0) >= TimeStep(1, 9)
        assert TimeStep(2, 0) > TimeStep(1, 9)
        assert TimeStep(1, 0) <= TimeStep(1, 0)

    def test_hashable_and_consistent(self):
        assert hash(TimeStep(7, 2)) == hash(TimeStep(7, 2))
        assert len({TimeStep(1, 0), TimeStep(1, 0), TimeStep(1, 1)}) == 2

    def test_comparison_with_other_types(self):
        assert TimeStep(1, 0) != 1
        with pytest.raises(TypeError):
            _ = TimeStep(1, 0) < 1


class TestArithmetic:
    def test_plus_ticks_resets_epsilon(self):
        # Each tick has its own unique epsilons (paper Fig. 2a).
        t = TimeStep(5, 7).plus_ticks(3)
        assert t == TimeStep(8, 0)

    def test_plus_zero_ticks(self):
        assert TimeStep(5, 7).plus_ticks(0) == TimeStep(5, 0)

    def test_plus_ticks_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeStep(5, 0).plus_ticks(-1)

    def test_plus_epsilon(self):
        assert TimeStep(5, 1).plus_epsilon() == TimeStep(5, 2)
        assert TimeStep(5, 1).plus_epsilon(4) == TimeStep(5, 5)


class TestCoercion:
    def test_as_timestep_int(self):
        assert as_timestep(42) == TimeStep(42, 0)

    def test_as_timestep_passthrough(self):
        t = TimeStep(1, 2)
        assert as_timestep(t) is t

    def test_str(self):
        assert str(TimeStep(10, 3)) == "10e3"

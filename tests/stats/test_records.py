"""Message records, the message log, and JSONL round trips."""

import pytest

from repro.stats.records import MessageRecord, read_jsonl
from repro.tools.ssparse import parse_file
from tests.conftest import run_config, small_torus_config


@pytest.fixture(scope="module")
def run():
    simulation, results = run_config(small_torus_config())
    return simulation, results


def test_log_captures_every_delivery(run):
    simulation, results = run
    delivered = sum(i.messages_delivered for i in simulation.network.interfaces)
    assert len(simulation.message_log) == delivered


def test_record_fields(run):
    simulation, _results = run
    record = simulation.message_log.records[0]
    assert record.delivered_tick >= record.created_tick
    assert record.latency >= 0
    assert record.network_latency >= 0
    assert record.num_flits == 4
    assert record.packets
    for packet in record.packets:
        assert packet.receive_tick >= packet.send_tick
        assert packet.hop_count >= 1  # at least the destination router


def test_minimal_hops_annotation(run):
    simulation, _results = run
    for record in simulation.message_log.records[:50]:
        # DOR is minimal: hop count equals the annotated minimal distance
        # plus one for the destination router itself.
        observed = max(p.hop_count for p in record.packets)
        assert observed == record.minimal_hops + 1


def test_sampled_filter(run):
    simulation, _results = run
    sampled = simulation.message_log.sampled()
    assert 0 < len(sampled) < len(simulation.message_log)


def test_flits_delivered_between(run):
    simulation, results = run
    workload = results.workload
    during = simulation.message_log.flits_delivered_between(
        workload.start_tick, workload.stop_tick
    )
    total = sum(r.num_flits for r in simulation.message_log.records)
    assert 0 < during < total


def test_jsonl_round_trip(run, tmp_path):
    simulation, _results = run
    path = tmp_path / "messages.jsonl"
    count = simulation.message_log.write_jsonl(str(path))
    loaded = read_jsonl(str(path))
    assert len(loaded) == count
    original = simulation.message_log.records[0]
    restored = loaded[0]
    assert restored.message_id == original.message_id
    assert restored.latency == original.latency
    assert restored.packets[0].hop_count == original.packets[0].hop_count
    assert restored.minimal_hops == original.minimal_hops


def test_parse_file_integration(run, tmp_path):
    simulation, _results = run
    path = tmp_path / "messages.jsonl"
    simulation.message_log.write_jsonl(str(path))
    result = parse_file(str(path), ["+sampled=true"])
    assert len(result) == len(simulation.message_log.sampled())

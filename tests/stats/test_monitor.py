"""The progress monitor."""

import pytest

from repro import Settings, Simulation
from tests.conftest import small_torus_config


def test_monitor_samples_on_period():
    config = small_torus_config()
    config["simulator"]["monitor"] = {"period": 500}
    simulation = Simulation(Settings.from_dict(config))
    simulation.run(max_time=100_000)
    monitor = simulation.monitor
    assert monitor is not None
    assert len(monitor.history) >= 3
    ticks = [s.tick for s in monitor.history]
    assert ticks == sorted(ticks)
    assert all(t % 500 == 0 for t in ticks)


def test_monitor_counters_monotone():
    config = small_torus_config()
    config["simulator"]["monitor"] = {"period": 400}
    simulation = Simulation(Settings.from_dict(config))
    simulation.run(max_time=100_000)
    history = simulation.monitor.history
    events = [s.executed_events for s in history]
    flits = [s.flits_ejected for s in history]
    assert events == sorted(events)
    assert flits == sorted(flits)
    assert simulation.monitor.event_rate() > 0
    assert simulation.monitor.delivery_rate() > 0


def test_monitor_does_not_prevent_drain():
    """The monitor must stop sampling once it is the only event source,
    or the queue would never empty."""
    config = small_torus_config()
    config["simulator"]["monitor"] = {"period": 100}
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run(max_time=200_000)
    assert results.drained
    assert simulation.simulator.queue_size <= 1  # at most the last sample


def test_no_monitor_by_default():
    simulation = Simulation(Settings.from_dict(small_torus_config()))
    assert simulation.monitor is None


def test_monitor_callback():
    config = small_torus_config()
    seen = []
    from repro.stats.monitor import ProgressMonitor

    simulation = Simulation(Settings.from_dict(config))
    ProgressMonitor(simulation.simulator, "extra_monitor",
                    simulation.network, 1000, callback=seen.append)
    simulation.run(max_time=100_000)
    assert seen
    assert seen[0].tick == 1000


def test_invalid_period():
    from repro.core.simulator import Simulator
    from repro.stats.monitor import ProgressMonitor

    simulation = Simulation(Settings.from_dict(small_torus_config()))
    with pytest.raises(ValueError):
        ProgressMonitor(simulation.simulator, "bad_monitor",
                        simulation.network, 0)

"""Time-binned statistics."""

import numpy as np
import pytest

from repro.stats.timeline import delivery_rate_timeline, latency_timeline


class RecordStub:
    def __init__(self, created, delivered, flits=1):
        self.created_tick = created
        self.delivered_tick = delivered
        self.latency = delivered - created
        self.num_flits = flits


class TestLatencyTimeline:
    def test_basic_binning(self):
        records = [RecordStub(0, 10), RecordStub(50, 80),
                   RecordStub(150, 160)]
        centers, means, counts = latency_timeline(records, bin_ticks=100)
        assert list(counts) == [2, 1]
        assert means[0] == pytest.approx(20.0)
        assert means[1] == pytest.approx(10.0)

    def test_empty_bins_are_nan(self):
        records = [RecordStub(0, 5), RecordStub(250, 260)]
        _centers, means, counts = latency_timeline(records, bin_ticks=100)
        assert counts[1] == 0
        assert np.isnan(means[1])

    def test_explicit_range(self):
        records = [RecordStub(150, 160)]
        centers, _means, counts = latency_timeline(
            records, bin_ticks=100, start_tick=0, end_tick=300)
        assert len(counts) >= 3
        assert counts[0] == 0
        assert counts[1] == 1

    def test_no_records(self):
        centers, means, counts = latency_timeline([], 100)
        assert len(centers) == 0

    def test_invalid_bin(self):
        with pytest.raises(ValueError):
            latency_timeline([RecordStub(0, 1)], 0)


class TestDeliveryRateTimeline:
    def test_rate_normalization(self):
        # 4 flits delivered in one 100-tick bin across 2 terminals:
        # 4 / (100 * 2) = 0.02 flits/terminal/tick.
        records = [RecordStub(0, 10, flits=2), RecordStub(0, 20, flits=2)]
        _centers, rates = delivery_rate_timeline(records, 100, 2)
        assert rates[0] == pytest.approx(0.02)

    def test_empty(self):
        centers, rates = delivery_rate_timeline([], 100, 4)
        assert len(centers) == 0

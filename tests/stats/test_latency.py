"""Latency distributions and percentile math."""

import numpy as np
import pytest

from repro.stats.latency import STANDARD_PERCENTILES, LatencyDistribution


class TestBasics:
    def test_mean_min_max(self):
        dist = LatencyDistribution([10, 20, 30])
        assert dist.mean() == 20.0
        assert dist.minimum() == 10.0
        assert dist.maximum() == 30.0
        assert len(dist) == 3

    def test_empty(self):
        dist = LatencyDistribution([])
        assert dist.empty
        assert np.isnan(dist.mean())
        assert np.isnan(dist.percentile(99))

    def test_percentile_semantics(self):
        # 1..100: the 99th percentile is a sample not exceeded by 99%.
        dist = LatencyDistribution(range(1, 101))
        assert dist.percentile(50) == 50
        assert dist.percentile(99) == 99
        assert dist.percentile(100) == 100
        assert dist.percentile(0) == 1

    def test_percentile_bounds_checked(self):
        dist = LatencyDistribution([1])
        with pytest.raises(ValueError):
            dist.percentile(101)

    def test_paper_figure7_interpretation(self):
        """'The 99.9th percentile latency is X means only 1 in 1000
        packets experience latency greater than X' (paper §V)."""
        samples = [100] * 999 + [592]
        dist = LatencyDistribution(samples)
        assert dist.percentile(99.9) == 100
        exceeding = sum(1 for s in samples if s > dist.percentile(99.9))
        assert exceeding == 1

    def test_summary_keys(self):
        dist = LatencyDistribution(range(100))
        summary = dist.summary()
        assert summary["count"] == 100
        for percent in STANDARD_PERCENTILES:
            assert f"p{percent:g}" in summary


class TestShapes:
    def test_cdf_monotone(self):
        dist = LatencyDistribution([5, 1, 3, 2, 4])
        x, y = dist.cdf()
        assert list(x) == [1, 2, 3, 4, 5]
        assert list(y) == [0.2, 0.4, 0.6, 0.8, 1.0]

    def test_pdf_integrates_to_one(self):
        rng = np.random.default_rng(0)
        dist = LatencyDistribution(rng.normal(100, 10, 5000))
        centers, density = dist.pdf(num_bins=40)
        width = centers[1] - centers[0]
        assert np.sum(density) * width == pytest.approx(1.0, rel=0.01)

    def test_percentile_curve_monotone(self):
        rng = np.random.default_rng(0)
        dist = LatencyDistribution(rng.exponential(50, 10000))
        latencies, nines = dist.percentile_curve(max_nines=3)
        assert len(latencies) == len(nines)
        assert all(np.diff(latencies) >= 0)
        assert all(np.diff(nines) > 0)

    def test_samples_copy(self):
        dist = LatencyDistribution([3, 1, 2])
        samples = dist.samples()
        samples[0] = 999
        assert dist.minimum() == 1.0


class TestFromRecords:
    def _record(self, created, delivered, send, recv):
        class PacketStub:
            def __init__(self, send, recv):
                self.send_tick = send
                self.receive_tick = recv

            @property
            def latency(self):
                return self.receive_tick - self.send_tick

        class RecordStub:
            def __init__(self):
                self.latency = delivered - created
                self.network_latency = recv - send
                self.packets = [PacketStub(send, recv)]

        return RecordStub()

    def test_kinds(self):
        records = [self._record(0, 50, 5, 40), self._record(10, 40, 15, 35)]
        message = LatencyDistribution.from_records(records, "message")
        network = LatencyDistribution.from_records(records, "network")
        packet = LatencyDistribution.from_records(records, "packet")
        assert message.mean() == 40.0
        assert network.mean() == pytest.approx(27.5)
        assert packet.mean() == pytest.approx(27.5)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            LatencyDistribution.from_records([], "bogus")

"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro import Settings, Simulation
from repro.core.simulator import Simulator


@pytest.fixture
def simulator():
    return Simulator()


def small_torus_config(**workload_overrides) -> dict:
    """A 4x4 torus with IQ routers: the workhorse integration config."""
    application = {
        "type": "blast",
        "injection_rate": 0.2,
        "warmup_duration": 300,
        "generate_duration": 1500,
        "traffic": {"type": "uniform_random"},
        "message_size": {"type": "constant", "size": 4},
    }
    application.update(workload_overrides)
    return {
        "simulator": {"seed": 17},
        "network": {
            "topology": "torus",
            "dimension_widths": [4, 4],
            "concentration": 1,
            "num_vcs": 2,
            "channel_latency": 2,
            "terminal_channel_latency": 1,
            "channel_period": 1,
            "router": {
                "architecture": "input_queued",
                "input_queue_depth": 16,
                "core_latency": 2,
            },
            "interface": {"max_packet_size": 8},
            "routing": {"algorithm": "torus_dimension_order"},
        },
        "workload": {"applications": [application]},
    }


def run_config(config: dict, max_time: int = 200_000):
    """Build and run a simulation from a plain config dict."""
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run(max_time=max_time)
    return simulation, results


def assert_network_quiescent(network) -> None:
    """After a drained run: all credits restored, all buffers empty.

    This is the strongest conservation check available: every flit that
    consumed a credit anywhere returned it, nothing is parked in any
    input buffer, and no interface has a backlog.
    """
    for router in network.routers:
        for port in range(router.num_ports):
            if not router.port_is_wired(port):
                continue
            tracker = router.output_credit_tracker(port)
            for vc in range(tracker.num_vcs):
                assert tracker.available(vc) == tracker.capacity(vc), (
                    f"{router.full_name} port {port} vc {vc}: "
                    f"{tracker.available(vc)}/{tracker.capacity(vc)}"
                )
            for vc in range(router.num_vcs):
                assert router.input_occupancy(port, vc) == 0
    for interface in network.interfaces:
        assert interface.pending_flits() == 0
        tracker = interface.output_credit_tracker(0)
        for vc in range(tracker.num_vcs):
            assert tracker.available(vc) == tracker.capacity(vc)


def assert_flit_conservation(network) -> None:
    """Every injected flit was ejected somewhere."""
    injected = sum(i.flits_injected for i in network.interfaces)
    ejected = sum(i.flits_ejected for i in network.interfaces)
    assert injected == ejected, f"injected {injected} != ejected {ejected}"

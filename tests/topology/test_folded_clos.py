"""Folded-Clos (k-ary n-tree): wiring rule, ancestry, digits."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network


def build_clos(half_radix=4, num_levels=2, routing="clos_adaptive"):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "folded_clos",
        "half_radix": half_radix,
        "num_levels": num_levels,
        "num_vcs": 1,
        "channel_latency": 1,
        "router": {"architecture": "output_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": routing},
    })
    sim = Simulator()
    return factory.create(Network, "folded_clos", sim, "network", None,
                          settings, RandomManager(1))


def test_counts():
    network = build_clos(half_radix=4, num_levels=3)
    assert network.num_terminals == 64
    assert network.num_routers == 3 * 16


def test_top_level_routers_have_half_ports():
    network = build_clos(half_radix=4, num_levels=2)
    leaf = network.router_at(0, 0)
    top = network.router_at(1, 0)
    assert leaf.num_ports == 8
    assert top.num_ports == 4


def test_terminals_attach_to_leaves():
    network = build_clos(half_radix=4, num_levels=2)
    for tid in range(network.num_terminals):
        interface = network.interface(tid)
        leaf = interface.output_channel(0).sink
        assert leaf is network.router_at(0, tid // 4)
        assert interface.output_channel(0).sink_port == tid % 4


def test_k_ary_n_tree_wiring_rule():
    """Up port u of router (l, w) lands on (l+1, w[l->u]) down port w[l]."""
    k = 4
    network = build_clos(half_radix=k, num_levels=3)
    for level in range(2):
        for index in range(16):
            router = network.router_at(level, index)
            digits = network.router_digits(index)
            for up_port in range(k):
                channel = router.output_channel(k + up_port)
                upper = channel.sink
                expected_digits = list(digits)
                expected_digits[level] = up_port
                assert upper is network.router_at(
                    level + 1, network.digits_to_index(expected_digits)
                )
                assert channel.sink_port == digits[level]


def test_digit_round_trip():
    network = build_clos(half_radix=4, num_levels=3)
    for index in (0, 5, 15):
        digits = network.router_digits(index)
        assert network.digits_to_index(digits) == index


def test_is_ancestor():
    network = build_clos(half_radix=2, num_levels=3)  # 8 terminals
    # Terminal 5 = digits (1, 0, 1): leaf router index 2 (digits 1,0...).
    # Its leaf router (level 0) must be an ancestor.
    assert network.is_ancestor(0, 5 // 2, 5)
    # Every top-level router is an ancestor of every terminal.
    for index in range(4):
        for tid in range(8):
            assert network.is_ancestor(2, index, tid)
    # A different leaf router is not an ancestor.
    assert not network.is_ancestor(0, 0, 5)


def test_ancestor_level_and_minimal_hops():
    network = build_clos(half_radix=2, num_levels=3)
    # Same leaf router (terminals 0 and 1): no router-router hops.
    assert network.ancestor_level(0, 1) == 0
    assert network.minimal_hops(0, 1) == 0
    # Top digit differs: must reach the top level.
    assert network.ancestor_level(0, 7) == 2
    assert network.minimal_hops(0, 7) == 4


def test_invalid_parameters():
    with pytest.raises(ValueError):
        build_clos(half_radix=1)
    with pytest.raises(ValueError):
        build_clos(num_levels=1)

"""Dragonfly: local cliques, global channel arrangement."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network


def build_dragonfly(group_size=4, global_links=1, concentration=1,
                    num_groups=None, num_vcs=3, routing="dragonfly_minimal"):
    models.load_all()
    config = {
        "topology": "dragonfly",
        "group_size": group_size,
        "global_links": global_links,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": routing},
    }
    if num_groups is not None:
        config["num_groups"] = num_groups
    settings = Settings.from_dict(config)
    sim = Simulator()
    return factory.create(Network, "dragonfly", sim, "network", None,
                          settings, RandomManager(1))


def test_balanced_counts():
    # a=4, h=1 -> g = 4*1 + 1 = 5 groups, 20 routers.
    network = build_dragonfly(group_size=4, global_links=1)
    assert network.num_groups == 5
    assert network.num_routers == 20
    assert network.num_terminals == 20


def test_local_cliques():
    network = build_dragonfly(group_size=4, global_links=1)
    for group in range(network.num_groups):
        for i in range(4):
            router = network.routers[group * 4 + i]
            for j in range(4):
                if i == j:
                    continue
                channel = router.output_channel(network.local_port(i, j))
                assert channel.sink is network.routers[group * 4 + j]


def test_every_group_pair_has_one_global_channel():
    network = build_dragonfly(group_size=4, global_links=1)
    pairs = set()
    for router in network.routers:
        group, local = router.address
        port = network.global_port(0)
        if not router.port_is_wired(port):
            continue
        peer = router.output_channel(port).sink
        peer_group = peer.address[0]
        assert peer_group != group
        pairs.add(frozenset((group, peer_group)))
    expected = {
        frozenset((a, b))
        for a in range(5)
        for b in range(a + 1, 5)
    }
    assert pairs == expected


def test_global_route_is_symmetric_on_the_same_channel():
    network = build_dragonfly(group_size=4, global_links=1)
    src_local, src_port = network.global_route(0, 3)
    src_router = network.routers[0 * 4 + src_local]
    channel = src_router.output_channel(src_port)
    dst_router = channel.sink
    assert dst_router.address[0] == 3
    entry_local, entry_port = network.global_route(3, 0)
    assert dst_router is network.routers[3 * 4 + entry_local]
    assert channel.sink_port == entry_port


def test_global_latency_override():
    models.load_all()
    settings = Settings.from_dict({
        "topology": "dragonfly",
        "group_size": 2,
        "global_links": 1,
        "concentration": 1,
        "num_vcs": 3,
        "channel_latency": 1,
        "global_latency": 9,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": "dragonfly_minimal"},
    })
    sim = Simulator()
    network = factory.create(Network, "dragonfly", sim, "network", None,
                             settings, RandomManager(1))
    router = network.routers[0]
    port = network.global_port(0)
    if router.port_is_wired(port):
        assert router.output_channel(port).latency == 9


def test_minimal_hops():
    network = build_dragonfly(group_size=4, global_links=1)
    # Same router.
    assert network.minimal_hops(0, 0) == 0
    # Same group, different router.
    assert network.minimal_hops(0, 1) == 1
    # Different groups: at most l-g-l.
    for dst in range(4, 20):
        assert 1 <= network.minimal_hops(0, dst) <= 3


def test_invalid_parameters():
    with pytest.raises(ValueError):
        build_dragonfly(group_size=1)
    with pytest.raises(ValueError):
        build_dragonfly(group_size=4, global_links=1, num_groups=7)

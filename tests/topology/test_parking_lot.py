"""Parking-lot chain topology."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network


def build_chain(length=4, concentration=1):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "parking_lot",
        "length": length,
        "concentration": concentration,
        "num_vcs": 1,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": "chain"},
    })
    sim = Simulator()
    return factory.create(Network, "parking_lot", sim, "network", None,
                          settings, RandomManager(1))


def test_counts_and_wiring():
    network = build_chain(length=5)
    assert network.num_routers == 5
    assert network.num_terminals == 5
    for i in range(4):
        channel = network.routers[i].output_channel(network.up_port)
        assert channel.sink is network.routers[i + 1]
        assert channel.sink_port == network.down_port


def test_end_routers_have_unwired_chain_port():
    network = build_chain(length=3)
    assert not network.routers[0].port_is_wired(network.down_port)
    assert not network.routers[2].port_is_wired(network.up_port)


def test_minimal_hops():
    network = build_chain(length=6)
    assert network.minimal_hops(5, 0) == 5
    assert network.minimal_hops(2, 2) == 0


def test_minimum_length():
    with pytest.raises(ValueError):
        build_chain(length=1)

"""Torus topology: wiring, coordinates, minimal hops."""

import pytest

from repro import Settings
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro import factory, models
from repro.net.network import Network, NetworkError


def build_torus(widths, concentration=1, num_vcs=2,
                routing="torus_dimension_order"):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "torus",
        "dimension_widths": widths,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": routing},
    })
    sim = Simulator()
    return factory.create(Network, "torus", sim, "network", None, settings,
                          RandomManager(1))


def test_router_and_terminal_counts():
    network = build_torus([4, 4], concentration=2)
    assert network.num_routers == 16
    assert network.num_terminals == 32


def test_router_addresses_cover_grid():
    network = build_torus([3, 2])
    addresses = {r.address for r in network.routers}
    assert addresses == {(x, y) for x in range(3) for y in range(2)}


def test_all_ports_wired():
    network = build_torus([4, 4], concentration=1)
    for router in network.routers:
        for port in range(router.num_ports):
            assert router.port_is_wired(port)


def test_ring_wiring_is_consistent():
    """The +port of each router leads to the coordinate+1 router, whose
    -port leads back."""
    network = build_torus([4])
    for router in network.routers:
        (x,) = router.address
        plus_port = network.port_for(0, +1)
        channel = router.output_channel(plus_port)
        neighbor = channel.sink
        assert neighbor.address == (((x + 1) % 4),)
        assert channel.sink_port == network.port_for(0, -1)
        # And the reverse direction comes back to us.
        back = neighbor.output_channel(network.port_for(0, -1))
        assert back.sink is router


def test_terminal_attachment():
    network = build_torus([2, 2], concentration=2)
    assert network.terminal_router(5) == 2
    assert network.terminal_port(5) == 1
    interface = network.interface(5)
    assert interface.output_channel(0).sink is network.routers[2]


def test_minimal_hops_wraps_around():
    network = build_torus([8])
    # 0 -> 7 is one hop backwards around the ring, not 7 forward.
    assert network.minimal_hops(0, 7) == 1
    assert network.minimal_hops(0, 4) == 4
    assert network.minimal_hops(0, 3) == 3


def test_minimal_hops_multi_dimension():
    network = build_torus([4, 4])
    # (0,0) to (2,3): 2 hops in dim 0, 1 hop (wrap) in dim 1.
    dst = 2 + 3 * 4
    assert network.minimal_hops(0, dst) == 3


def test_incompatible_routing_rejected():
    with pytest.raises(NetworkError):
        build_torus([4, 4], routing="chain")


def test_invalid_widths_rejected():
    with pytest.raises(ValueError):
        build_torus([1, 4])
    with pytest.raises(ValueError):
        build_torus([])


def test_channel_count():
    """A k-ary n-cube has n * product(widths) bidirectional router links
    plus one per terminal; each bidirectional link is 4 channels (2 flit
    + 2 credit), registered as 2 link indices per wire() call."""
    network = build_torus([4, 4], concentration=1)
    # 2 dims * 16 routers = 32 router-router links + 16 terminal links.
    assert network._link_count == 48

"""HyperX / flattened butterfly: clique wiring, port math."""

import pytest

from repro import Settings, factory, models
from repro.core.rng import RandomManager
from repro.core.simulator import Simulator
from repro.net.network import Network


def build_hyperx(widths, concentration=1, num_vcs=2,
                 routing="hyperx_dimension_order"):
    models.load_all()
    settings = Settings.from_dict({
        "topology": "hyperx",
        "dimension_widths": widths,
        "concentration": concentration,
        "num_vcs": num_vcs,
        "channel_latency": 1,
        "router": {"architecture": "input_queued", "input_queue_depth": 4},
        "interface": {},
        "routing": {"algorithm": routing},
    })
    sim = Simulator()
    return factory.create(Network, "hyperx", sim, "network", None, settings,
                          RandomManager(1))


def test_1d_is_a_clique():
    network = build_hyperx([5])
    for router in network.routers:
        (own,) = router.address
        for other in range(5):
            if other == own:
                continue
            port = network.port_for(0, own, other)
            channel = router.output_channel(port)
            assert channel.sink.address == (other,)
            # The far end's port back to us.
            assert channel.sink_port == network.port_for(0, other, own)


def test_port_count():
    # Radix = concentration + sum(width - 1): Table I's 63-port router
    # comes from [32] widths + 32 concentration.
    network = build_hyperx([4, 3], concentration=2)
    assert network.routers[0].num_ports == 2 + 3 + 2


def test_flattened_butterfly_paper_config_shape():
    """The scaled case-study-B configuration: every port wired."""
    network = build_hyperx([8], concentration=4)
    assert network.num_terminals == 32
    assert network.num_routers == 8
    assert network.routers[0].num_ports == 4 + 7
    for router in network.routers:
        for port in range(router.num_ports):
            assert router.port_is_wired(port)


def test_port_for_self_rejected():
    network = build_hyperx([4])
    with pytest.raises(ValueError):
        network.port_for(0, 2, 2)


def test_minimal_hops_is_hamming_distance():
    network = build_hyperx([4, 4])
    # routers (0,0) and (3,2): both dims differ -> 2 hops.
    dst_router = 3 + 2 * 4
    assert network.minimal_hops(0, dst_router) == 2
    # same row: 1 hop.
    assert network.minimal_hops(0, 2) == 1
    assert network.minimal_hops(0, 0) == 0


def test_2d_cross_dimension_wiring():
    network = build_hyperx([3, 3])
    router = network.routers[4]  # coords (1, 1)
    assert router.address == (1, 1)
    # Dimension 1 neighbor (1, 2) has flat index 1 + 2*3 = 7.
    port = network.port_for(1, 1, 2)
    assert router.output_channel(port).sink is network.routers[7]

"""Smart object factories (paper §III-D)."""

import pytest

from repro.factory.registry import FactoryError, ObjectFactory


class Base:
    pass


class Other:
    pass


def test_register_and_create():
    factory = ObjectFactory()

    @factory.register(Base, "impl")
    class Impl(Base):
        def __init__(self, x):
            self.x = x

    obj = factory.create(Base, "impl", 42)
    assert isinstance(obj, Impl)
    assert obj.x == 42


def test_drop_in_extension_requires_no_existing_code_changes():
    """The paper's key property: registering is purely additive."""
    factory = ObjectFactory()

    @factory.register(Base, "packaged")
    class Packaged(Base):
        pass

    # A "user source file" registers a new model...
    @factory.register(Base, "user_model")
    class UserModel(Base):
        pass

    # ...and both are now constructible by name.
    assert factory.names(Base) == ["packaged", "user_model"]


def test_unknown_name_raises_with_known_list():
    factory = ObjectFactory()

    @factory.register(Base, "only")
    class Only(Base):
        pass

    with pytest.raises(FactoryError, match="only"):
        factory.create(Base, "missing")


def test_same_name_different_base_ok():
    factory = ObjectFactory()

    @factory.register(Base, "shared_name")
    class A(Base):
        pass

    @factory.register(Other, "shared_name")
    class B(Other):
        pass

    assert isinstance(factory.create(Base, "shared_name"), A)
    assert isinstance(factory.create(Other, "shared_name"), B)


def test_duplicate_registration_of_different_class_rejected():
    factory = ObjectFactory()

    @factory.register(Base, "dup")
    class First(Base):
        pass

    with pytest.raises(FactoryError):
        @factory.register(Base, "dup")
        class Second(Base):
            pass


def test_reregistration_of_same_class_is_idempotent():
    factory = ObjectFactory()

    class Impl(Base):
        pass

    factory.register(Base, "x")(Impl)
    factory.register(Base, "x")(Impl)  # e.g. module imported twice
    assert factory.lookup(Base, "x") is Impl


def test_non_subclass_rejected():
    factory = ObjectFactory()
    with pytest.raises(TypeError):
        @factory.register(Base, "bad")
        class NotABase:
            pass


def test_lookup_without_construction():
    factory = ObjectFactory()

    @factory.register(Base, "impl")
    class Impl(Base):
        def __init__(self):
            raise RuntimeError("should not construct")

    assert factory.lookup(Base, "impl") is Impl
    with pytest.raises(FactoryError):
        factory.lookup(Base, "nope")


def test_is_registered():
    factory = ObjectFactory()

    @factory.register(Base, "x")
    class Impl(Base):
        pass

    assert factory.is_registered(Base, "x")
    assert not factory.is_registered(Base, "y")
    assert not factory.is_registered(Other, "x")


def test_global_factory_has_packaged_models():
    """All paper-described models register under their paper names."""
    from repro import factory as global_factory
    from repro import models
    from repro.net.network import Network
    from repro.router.base import Router
    from repro.routing.base import RoutingAlgorithm

    models.load_all()
    router_names = global_factory.names(Router)
    assert {"output_queued", "input_queued", "input_output_queued"} <= set(
        router_names
    )
    network_names = global_factory.names(Network)
    assert {"torus", "folded_clos", "hyperx", "dragonfly", "parking_lot"} <= set(
        network_names
    )
    routing_names = global_factory.names(RoutingAlgorithm)
    assert {
        "torus_dimension_order",
        "clos_adaptive",
        "clos_deterministic",
        "hyperx_ugal",
        "hyperx_valiant",
        "hyperx_dimension_order",
        "dragonfly_minimal",
        "chain",
    } <= set(routing_names)

"""Factory failure modes around import-time registration.

The drop-in extension contract (paper §III-D) registers models as a
side effect of importing their module.  That makes the failure modes
ordering-sensitive: a lookup before the registering import must fail
loudly, a re-import (importlib.reload) must stay idempotent, and a
rejected duplicate must leave the original registration intact.
"""

from __future__ import annotations

import importlib
import importlib.util
import pathlib
import sys
import textwrap

import pytest

from repro.factory.registry import FactoryError, ObjectFactory

MODULE_SOURCE = textwrap.dedent(
    """
    from tests.factory.test_failure_modes import FACTORY, PluginBase

    @FACTORY.register(PluginBase, "plugin")
    class Plugin(PluginBase):
        pass
    """
)

#: Shared with the generated module so both sides use one registry.
FACTORY = ObjectFactory()


class PluginBase:
    pass


@pytest.fixture()
def plugin_module(tmp_path: pathlib.Path):
    """Write a registering module to disk and yield its import path."""
    path = tmp_path / "lint_ordering_plugin.py"
    path.write_text(MODULE_SOURCE)
    module_name = "lint_ordering_plugin"
    yield module_name, path
    sys.modules.pop(module_name, None)


def _import(module_name: str, path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    spec.loader.exec_module(module)
    return module


def test_lookup_before_registering_import_fails(plugin_module):
    module_name, path = plugin_module
    with pytest.raises(FactoryError, match="plugin"):
        FACTORY.lookup(PluginBase, "plugin")
    _import(module_name, path)
    assert FACTORY.lookup(PluginBase, "plugin").__name__ == "Plugin"


def test_reimport_is_idempotent(plugin_module):
    module_name, path = plugin_module
    first = _import(module_name, path)
    registered_first = FACTORY.lookup(PluginBase, "plugin")
    # Re-executing the module (reload, or a second import under a
    # different name) re-runs the decorator with an identical qualname:
    # must not raise, and the registry keeps a single winner.
    second = _import(module_name + "_again", path)
    sys.modules.pop(module_name + "_again", None)
    registered_second = FACTORY.lookup(PluginBase, "plugin")
    assert registered_second.__qualname__ == registered_first.__qualname__
    assert first.Plugin is not second.Plugin  # distinct module executions


def test_rejected_duplicate_leaves_original_intact():
    factory = ObjectFactory()

    class Base:
        pass

    @factory.register(Base, "model")
    class Original(Base):
        pass

    with pytest.raises(FactoryError, match="already registered"):

        @factory.register(Base, "model")
        class Usurper(Base):
            pass

    assert factory.lookup(Base, "model") is Original
    assert factory.names(Base) == ["model"]


def test_create_propagates_constructor_errors():
    factory = ObjectFactory()

    class Base:
        pass

    @factory.register(Base, "fussy")
    class Fussy(Base):
        def __init__(self, value: int):
            if value < 0:
                raise ValueError("negative")

    # Constructor failures are the model's errors, not FactoryError.
    with pytest.raises(ValueError, match="negative"):
        factory.create(Base, "fussy", -1)
    with pytest.raises(TypeError):
        factory.create(Base, "fussy")  # missing argument


def test_registration_order_does_not_leak_across_bases():
    factory = ObjectFactory()

    class BaseA:
        pass

    class BaseB:
        pass

    @factory.register(BaseA, "shared_name")
    class ModelA(BaseA):
        pass

    assert factory.names(BaseB) == []
    with pytest.raises(FactoryError, match="BaseB"):
        factory.lookup(BaseB, "shared_name")

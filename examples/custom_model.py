#!/usr/bin/env python
"""Extending the simulator with your own component models (paper §III-D).

SuperSim's #1 goal is letting architects drop in new models with zero
changes to the existing code base.  This example defines, in ordinary
user code:

* a custom traffic pattern (``hotspot``: a fraction of traffic targets
  a small set of hot terminals), and
* a custom routing algorithm for the torus (``torus_random_direction``:
  dimension order, but breaking direction ties randomly).

Both register with the object factory at import time and are then
selected purely by name from the JSON configuration -- the simulator
core is untouched.

Run:  python examples/custom_model.py
"""

from typing import List

from repro import Settings, Simulation, factory
from repro.routing.base import Candidate, RoutingAlgorithm
from repro.routing.torus import TorusDimensionOrderRouting
from repro.topology.util import ring_distance
from repro.workload.traffic import TrafficPattern


# --- a user-defined traffic pattern -----------------------------------------

@factory.register(TrafficPattern, "hotspot")
class HotspotTraffic(TrafficPattern):
    """``fraction`` of traffic targets the first ``num_hot`` terminals;
    the rest is uniform random."""

    def __init__(self, settings, num_terminals, network, rng):
        super().__init__(settings, num_terminals, network, rng)
        self.fraction = settings.get_float("fraction", 0.2)
        self.num_hot = settings.get_uint("num_hot", 1)

    def destination(self, source):
        if self.rng.random() < self.fraction:
            return int(self.rng.integers(self.num_hot))
        dst = int(self.rng.integers(self.num_terminals - 1))
        return dst if dst < source else dst + 1


# --- a user-defined routing algorithm ----------------------------------------

@factory.register(RoutingAlgorithm, "torus_random_direction")
class TorusRandomDirectionRouting(TorusDimensionOrderRouting):
    """DOR that breaks half-way direction ties randomly instead of
    always going positive (spreads load on even-radix rings)."""

    topology = "torus"  # declare compatibility (user extension hook)

    def __init__(self, network, router, input_port, settings):
        super().__init__(network, router, input_port, settings)
        self._rng = network.random.generator(
            f"user_routing.{router.full_name}.{input_port}"
        )

    def route(self, packet, input_vc) -> List[Candidate]:
        dst_router = self.network.terminal_router(packet.destination)
        if dst_router != self.router.router_id:
            dst_coords = self.network.router_coords(dst_router)
            dim = self._first_differing_dimension(dst_coords)
            width = self.widths[dim]
            hops, _direction = ring_distance(
                self.coords[dim], dst_coords[dim], width
            )
            if hops * 2 == width and self._rng.random() < 0.5:
                # Exactly half way around: flip the tie to negative by
                # rewriting the packet's dateline start bookkeeping.
                port = self.network.port_for(dim, -1)
                vc_class = self._dateline_class(packet, dim, -1)
                vcs = [vc for vc in range(self.router.num_vcs)
                       if vc % 2 == vc_class]
                return [(port, vc) for vc in vcs]
        return super().route(packet, input_vc)


CONFIG = {
    "simulator": {"seed": 11},
    "network": {
        "topology": "torus",
        "dimension_widths": [4, 4],
        "concentration": 1,
        "num_vcs": 2,
        "channel_latency": 3,
        "router": {"architecture": "input_queued",
                   "input_queue_depth": 16, "core_latency": 2},
        "interface": {"max_packet_size": 4},
        # Select the user models purely by name:
        "routing": {"algorithm": "torus_random_direction"},
    },
    "workload": {
        "applications": [{
            "type": "blast",
            "injection_rate": 0.25,
            "warmup_duration": 500,
            "generate_duration": 3000,
            "traffic": {"type": "hotspot", "fraction": 0.3, "num_hot": 2},
            "message_size": {"type": "constant", "size": 2},
        }],
    },
}


def main():
    results = Simulation(Settings.from_dict(CONFIG)).run(max_time=100_000)
    print("drained:", results.drained)
    latency = results.latency()
    print(f"mean latency {latency.mean():.1f} ns over {len(latency)} messages")

    # Show the hotspot doing its job: terminals 0/1 receive far more.
    received = {}
    for record in results.records():
        received[record.destination] = received.get(record.destination, 0) + 1
    hot = sum(received.get(t, 0) for t in (0, 1))
    print(f"traffic to hot terminals 0-1: {hot}/{sum(received.values())} "
          f"({hot / sum(received.values()):.0%})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Transient analysis: Blast disturbed by Pulse (paper Fig. 5).

Two applications share the network through the four-phase workload
handshake: Blast supplies steady sampled background traffic; Pulse
injects a burst partway through the sampling window.  The output is
Blast's mean latency over time -- flat, spiking during the burst,
recovering afterwards.

Run:  python examples/transient_blast_pulse.py
"""

from repro import Settings, Simulation
from repro.configs import blast_pulse_config
from repro.tools.ssplot import latency_vs_time


def main():
    config = blast_pulse_config(
        blast_rate=0.2,
        pulse_rate=0.7,
        pulse_delay=1500,
        pulse_duration=1000,
    )
    simulation = Simulation(Settings.from_dict(config))
    results = simulation.run(max_time=150_000)
    workload = results.workload

    blast_records = results.records(application_id=0)
    plot = latency_vs_time(
        blast_records,
        bin_ticks=250,
        title="Blast mean latency, disrupted by Pulse",
        start_tick=workload.start_tick,
        end_tick=workload.stop_tick,
    )
    print(plot.render_ascii(width=70, height=16))

    burst_start = workload.start_tick + 1500
    burst_end = burst_start + 1000
    print(f"sampling window: [{workload.start_tick}, {workload.stop_tick}] ns")
    print(f"pulse burst:     [{burst_start}, {burst_end}] ns")
    print(f"blast messages sampled: {len(blast_records)}")


if __name__ == "__main__":
    main()

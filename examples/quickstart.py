#!/usr/bin/env python
"""Quickstart: simulate a small torus and read the results.

Builds a 4x4 torus of input-queued routers, drives it with uniform
random Blast traffic at 30% load, and prints the latency distribution
-- the five-minute tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import Settings, Simulation

CONFIG = {
    "simulator": {"seed": 12345},
    "network": {
        "topology": "torus",
        "dimension_widths": [4, 4],
        "concentration": 1,
        "num_vcs": 2,
        "channel_latency": 5,        # ticks are nanoseconds here
        "terminal_channel_latency": 2,
        "router": {
            "architecture": "input_queued",
            "input_queue_depth": 32,
            "core_latency": 5,
            "crossbar_scheduler": {"flow_control": "winner_take_all"},
        },
        "interface": {"max_packet_size": 8},
        "routing": {"algorithm": "torus_dimension_order"},
    },
    "workload": {
        "applications": [{
            "type": "blast",
            "injection_rate": 0.3,          # flits/terminal/cycle
            "warmup_duration": 1000,        # ns of unsampled warmup
            "generate_duration": 5000,      # ns sampling window
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 4},
        }],
    },
}


def main():
    simulation = Simulation(Settings.from_dict(CONFIG))
    results = simulation.run(max_time=100_000)

    print("drained:        ", results.drained)
    print("offered load:   ", round(results.offered_load(), 3))
    print("accepted load:  ", round(results.accepted_load(), 3))

    latency = results.latency()
    print(f"\nmessage latency over {len(latency)} sampled messages (ns):")
    print(f"  mean   {latency.mean():8.1f}")
    for percent in (50, 90, 99, 99.9):
        print(f"  p{percent:<5g}{latency.percentile(percent):8.1f}")

    # Raw records are available for custom analyses.
    longest = max(results.records(), key=lambda r: r.latency)
    print(f"\nslowest message: {longest.source} -> {longest.destination}, "
          f"{longest.latency} ns over {longest.packets[0].hop_count} hops")


if __name__ == "__main__":
    main()

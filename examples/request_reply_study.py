#!/usr/bin/env python
"""Transaction-level analysis with the request/reply application.

Each terminal issues requests; destinations answer with responses
sharing the transaction id; ssparse aggregates latency at packet,
message, and transaction granularity -- the round trip is what RPC and
memory-semantic fabrics actually experience.

Run:  python examples/request_reply_study.py
"""

from repro import Settings, Simulation
from repro.stats.latency import LatencyDistribution
from repro.tools.ssparse import parse_records

CONFIG = {
    "simulator": {"seed": 21},
    "network": {
        "topology": "hyperx",
        "dimension_widths": [4],
        "concentration": 2,
        "num_vcs": 2,
        "channel_latency": 10,
        "router": {"architecture": "input_output_queued",
                   "input_queue_depth": 32, "core_latency": 4,
                   "output_queue_depth": 32},
        "interface": {"max_packet_size": 4},
        "routing": {"algorithm": "hyperx_dimension_order"},
    },
    "workload": {
        "applications": [{
            "type": "request_reply",
            "injection_rate": 0.1,          # request flits/terminal/cycle
            "response_size": 8,             # 2-flit reads, 8-flit replies
            "warmup_duration": 500,
            "generate_duration": 4000,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 2},
        }],
    },
}


def main():
    simulation = Simulation(Settings.from_dict(CONFIG))
    results = simulation.run(max_time=150_000)
    app = results.workload.applications[0]

    print("drained:", results.drained)
    print(f"transactions: {app.sampled_transactions_closed} closed / "
          f"{app.sampled_transactions_opened} opened (sampled)")

    parsed = parse_records(results.records(sampled_only=False))
    message = parsed.latency("message")
    transaction = LatencyDistribution(app.sampled_transaction_latencies())
    print("\n              mean      p99")
    print(f"message   {message.mean():8.1f} {message.percentile(99):8.1f}")
    print(f"round trip{transaction.mean():8.1f} "
          f"{transaction.percentile(99):8.1f}")
    print("\nThe round trip pays two network traversals plus the "
          "response's\nlarger serialization -- exactly what the "
          "transaction view exposes\nand the per-message view hides.")


if __name__ == "__main__":
    main()

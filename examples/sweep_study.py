#!/usr/bin/env python
"""A full sssweep pipeline (paper §V, Listing 2).

A few lines of variable declarations expand into a cross product of
simulations executed through taskrun, parsed with ssparse, and plotted
with ssplot -- the paper's configure/simulate/parse/analyze/plot/view
workflow end to end.  Outputs land in ``sweep_output/``:

* ``sweep.csv``   -- one row per simulation with its statistics
* ``index.html``  -- the web-viewer stand-in
* an ASCII load-vs-latency plot on stdout

Run:  python examples/sweep_study.py
"""

import pathlib

from repro.tools.ssplot import LoadLatencyPlot
from repro.tools.sssweep import Sweep

BASE_CONFIG = {
    "simulator": {"seed": 7},
    "network": {
        "topology": "torus",
        "dimension_widths": [4, 4],
        "concentration": 1,
        "num_vcs": 2,
        "channel_latency": 5,
        "router": {
            "architecture": "input_queued",
            "input_queue_depth": 32,
            "core_latency": 5,
        },
        "interface": {"max_packet_size": 8},
        "routing": {"algorithm": "torus_dimension_order"},
    },
    "workload": {
        "applications": [{
            "type": "blast",
            "injection_rate": 0.1,
            "warmup_duration": 800,
            "generate_duration": 2500,
            "traffic": {"type": "uniform_random"},
            "message_size": {"type": "constant", "size": 4},
        }],
    },
}


def collect(results):
    latency = results.latency()
    saturated = (not results.drained
                 or results.accepted_load() < 0.93 * results.offered_load())
    return {
        "accepted": results.accepted_load(),
        "mean_latency": latency.mean(),
        "p99_latency": latency.percentile(99),
        "saturated": saturated,
        "distribution": latency,
    }


def main():
    out_dir = pathlib.Path("sweep_output")
    out_dir.mkdir(exist_ok=True)

    sweep = Sweep(BASE_CONFIG, name="load_sweep", collect=collect,
                  max_time=60_000)

    # Listing 2, adapted: one line per swept variable.
    loads = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]

    def set_load(load):
        return f"workload.applications.0.injection_rate=float={load}"

    sweep.add_variable("InjectionRate", "IR", loads, set_load)

    print(f"running {sweep.num_jobs} simulations through taskrun...")
    sweep.run(observer=lambda job: print(f"  done: {job.job_id}"))

    # Build the classic load-vs-latency plot, then strip the
    # non-serializable distributions before exporting the sweep index.
    plot = LoadLatencyPlot(title="Load vs latency, 4x4 torus, DOR")
    for job in sweep.jobs:
        row = job.result
        plot.add_point(job.values["InjectionRate"], row["distribution"],
                       row["saturated"])
        job.result = {k: v for k, v in row.items() if k != "distribution"}
    sweep.write_csv(str(out_dir / "sweep.csv"))
    sweep.write_html_index(str(out_dir / "index.html"))

    print()
    print(plot.build().render_ascii(width=64, height=14))
    print(f"outputs written to {out_dir}/")


if __name__ == "__main__":
    main()

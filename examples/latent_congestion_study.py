#!/usr/bin/env python
"""Case study A in miniature: latent congestion detection (paper §VI-A).

Sweeps the congestion sensor's propagation latency on a folded-Clos
network with adaptive uprouting and finite output queues, showing the
throughput collapse of Fig. 9b: stale congestion values make every
input port's routing engine bombard the same "least congested" output.

Run:  python examples/latent_congestion_study.py
"""

from repro import Settings, Simulation
from repro.configs import latent_congestion_config
from repro.tools.ssplot import PlotData

SENSE_LATENCIES = [1, 4, 16, 64]
INJECTION_RATE = 0.85


def run_point(sense_latency, output_queue_depth):
    config = latent_congestion_config(
        congestion_latency=sense_latency,
        output_queue_depth=output_queue_depth,
        injection_rate=INJECTION_RATE,
        half_radix=4,
        warmup=1500,
        window=3000,
    )
    config["network"]["num_levels"] = 2  # keep the example quick
    results = Simulation(Settings.from_dict(config)).run(max_time=25_000)
    return results.accepted_load(), results.latency().mean()


def main():
    print("Latent congestion detection on a 16-terminal folded Clos")
    print(f"(offered load {INJECTION_RATE}, adaptive uprouting, OQ routers)\n")

    plot = PlotData("Throughput vs congestion sensing latency",
                    "sense latency (ns)", "accepted load")
    for depth, label in ((None, "infinite queues"), (64, "64-flit queues")):
        throughputs = []
        print(f"{label}:")
        for sense in SENSE_LATENCIES:
            accepted, mean_latency = run_point(sense, depth)
            throughputs.append(accepted)
            print(f"  sense latency {sense:3d} ns: "
                  f"accepted {accepted:.3f}, mean latency {mean_latency:7.1f} ns")
        plot.add(label, SENSE_LATENCIES, throughputs)
        print()

    print(plot.render_ascii(width=60, height=14))
    print("Infinite queues absorb the herding (throughput flat, latency "
          "grows);\nfinite queues lose throughput once the sensing "
          "latency exceeds a few cycles.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Case study C in miniature: flow control techniques (paper §VI-C).

Compares flit-buffer, packet-buffer, and winner-take-all crossbar
scheduling on a torus across message sizes.  At scale the three
techniques converge -- the paper's design takeaway: if packet-buffer
flow control is cheaper to build, just keep packets small.

Run:  python examples/flow_control_study.py
"""

from repro import Settings, Simulation
from repro.configs import flow_control_config

TECHNIQUES = ("flit_buffer", "packet_buffer", "winner_take_all")
SIZES = (1, 4, 16)


def run_point(technique, size):
    config = flow_control_config(
        flow_control=technique,
        num_vcs=4,
        message_size=size,
        injection_rate=0.9,
        warmup=800,
        window=1600,
    )
    config["network"]["dimension_widths"] = [4, 4]  # keep it quick
    results = Simulation(Settings.from_dict(config)).run(max_time=10_000)
    return results.accepted_load()


def main():
    print("Flow control techniques on a 16-node torus, offered load 0.9\n")
    header = "size   " + "".join(f"{t:18s}" for t in TECHNIQUES)
    print(header)
    print("-" * len(header))
    for size in SIZES:
        row = f"{size:4d}   "
        values = []
        for technique in TECHNIQUES:
            accepted = run_point(technique, size)
            values.append(accepted)
            row += f"{accepted:<18.3f}"
        print(row)
    print("\nWith single-flit messages the techniques are identical; at "
          "larger sizes\nthe differences stay small -- the unit of "
          "allocation matters little at scale.")


if __name__ == "__main__":
    main()
